//! The wire codec: byte encodings for every protocol message.
//!
//! The simulator moves typed messages by value; real sockets move bytes.
//! This module is the translation layer: a self-describing, versioned
//! encoding for the full message alphabet — Sequence Paxos ([`PaxosMsg`]),
//! BLE ([`BleMsg`]), the service layer ([`ServiceMsg`], including the
//! reconfiguration/migration and snapshot-transfer messages) — generic over
//! any entry type that implements [`WalEncode`], the same byte-encoding
//! trait the WAL uses for durability.
//!
//! Three disciplines carry over from the rest of the system:
//!
//! * **Checksums like the WAL.** Transports frame these payloads with the
//!   same FNV-1a checksum the WAL uses for torn-write detection
//!   ([`checksum`]); a frame that fails its checksum is never parsed.
//! * **Zero-copy fan-out survives serialization.** The replication hot
//!   path shares one [`EntryBatch`] among all followers by refcount. A
//!   naive codec would re-encode that batch once per follower;
//!   [`BatchCache`] keys encodings by the batch's allocation identity so a
//!   fan-out of N messages encodes the entries exactly once.
//! * **Stable discriminants.** Enum variants encode as append-only
//!   discriminant bytes (see [`PaxosMsg`] docs for the forward-compat
//!   rules). Decoders return typed [`WireError`]s — never panic — so a
//!   transport can drop-and-count unknown frames from newer peers.
//!
//! Everything is little-endian. Variable-length fields are `u32`
//! length-prefixed. The codec version for this whole schema is
//! [`WIRE_VERSION`]; transports put it in their frame header.

use crate::ballot::Ballot;
use crate::messages::{
    AcceptDecide, AcceptSync, Accepted, BleMessage, BleMsg, Decide, Message, PaxosMsg, Prepare,
    Promise, ReadCheck, ReadCheckAck, ReadIndexReq, ReadIndexResp, SnapshotAck, SnapshotChunk,
    SnapshotMeta,
};
use crate::omni::OmniMessage;
use crate::service::ServiceMsg;
use crate::snapshot::SnapshotData;
use crate::storage::EntryBatch;
use crate::util::{LogEntry, StopSign};
use crate::wal::WalEncode;
use std::collections::HashMap;
use std::sync::Arc;

/// Version byte of this codec schema. Bump when an encoding changes
/// incompatibly; decoders reject other versions with a typed error.
pub const WIRE_VERSION: u8 = 1;

/// A typed decode failure. Decoding malformed bytes must produce one of
/// these — never a panic — so transports can drop bad frames and keep the
/// session alive (see the forward-compat rules on
/// [`PaxosMsg`](crate::messages::PaxosMsg)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before `what` could be read.
    Truncated { what: &'static str },
    /// An enum discriminant byte no decoder in this build understands
    /// (typically a frame from a newer peer). Transports must drop the
    /// frame and count it, not disconnect.
    UnknownDiscriminant { what: &'static str, value: u8 },
    /// A declared length exceeds the bytes actually present.
    BadLength { what: &'static str, declared: u64 },
    /// A field's bytes are structurally present but invalid (e.g. a string
    /// that is not UTF-8).
    InvalidPayload { what: &'static str },
    /// The payload announced a codec version this build does not speak.
    BadVersion { got: u8 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated while reading {what}"),
            WireError::UnknownDiscriminant { what, value } => {
                write!(f, "unknown discriminant {value} for {what}")
            }
            WireError::BadLength { what, declared } => {
                write!(f, "length {declared} of {what} exceeds buffer")
            }
            WireError::InvalidPayload { what } => write!(f, "invalid payload for {what}"),
            WireError::BadVersion { got } => {
                write!(f, "wire version {got} unsupported (speak {WIRE_VERSION})")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over `bytes` — the WAL's torn-write checksum, exported so
/// transports frame wire payloads under the same discipline.
pub fn checksum(bytes: &[u8]) -> u32 {
    checksum_parts(&[bytes])
}

/// [`checksum`] over the concatenation of `parts`, without materializing
/// it (transports hash a frame header and its payload separately).
pub fn checksum_parts(parts: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for part in parts {
        for &b in *part {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Primitives.

/// Append a `u32` length-prefixed byte run.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
}

/// Append a `u32` length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

fn put_ballot(buf: &mut Vec<u8>, b: Ballot) {
    buf.extend_from_slice(&b.n.to_le_bytes());
    buf.extend_from_slice(&b.priority.to_le_bytes());
    buf.extend_from_slice(&b.pid.to_le_bytes());
}

/// Bounded cursor over a decode buffer. Every read is checked and returns
/// a typed [`WireError`] on shortfall; nothing here can panic on malformed
/// input.
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { what });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self, what: &'static str) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `bool` encoded as one byte (0 or 1).
    pub fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::InvalidPayload { what }),
        }
    }

    /// Read a `u32` length-prefixed byte run.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.u32(what)? as usize;
        if self.remaining() < len {
            return Err(WireError::BadLength {
                what,
                declared: len as u64,
            });
        }
        self.take(len, what)
    }

    /// Read a `u32` length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let bytes = self.bytes(what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidPayload { what })
    }

    /// Read a ballot (24 bytes).
    pub fn ballot(&mut self, what: &'static str) -> Result<Ballot, WireError> {
        Ok(Ballot::new(
            self.u64(what)?,
            self.u64(what)?,
            self.u64(what)?,
        ))
    }

    /// Read a `u32` element count, sanity-bounded by the bytes actually
    /// remaining so a hostile count cannot drive a huge pre-allocation.
    /// `min_elem` is the smallest possible encoding of one element.
    pub fn count(&mut self, min_elem: usize, what: &'static str) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(WireError::BadLength {
                what,
                declared: n as u64,
            });
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Shared-batch encode cache.

/// Memoizes the byte encodings of refcounted batches within one send
/// cycle, so the leader's fan-out of a shared [`EntryBatch`] (or an
/// `Arc<[T]>` migration segment) to N followers serializes the entries
/// once and reuses the bytes N-1 times — the zero-copy hot path's
/// refcount sharing, carried through serialization.
///
/// Entries are keyed by the batch's allocation identity (pointer, length).
/// That identity is only meaningful while the batch is alive, so the
/// contract is cycle-scoped: callers must [`BatchCache::reset`] once the
/// messages encoded in the current cycle have been dropped (transports do
/// this at the top of each poll/send cycle). Within a cycle the cached
/// batches are kept alive by the very messages being encoded.
#[derive(Debug, Default)]
pub struct BatchCache {
    blocks: HashMap<(usize, usize), Arc<[u8]>>,
    hits: u64,
    misses: u64,
}

/// Cap on memoized blocks per cycle; a fan-out cycle touches a handful of
/// distinct batches, so overflowing this means the contract is being
/// ignored — clear rather than grow without bound.
const BATCH_CACHE_CAP: usize = 128;

impl BatchCache {
    /// A fresh cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget all memoized blocks. Call between send cycles (batch
    /// allocation identities are only stable within one).
    pub fn reset(&mut self) {
        self.blocks.clear();
    }

    /// (hits, misses) since construction — observability for the
    /// fan-out-encodes-once property.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn memoized<F: FnOnce() -> Vec<u8>>(&mut self, key: (usize, usize), encode: F) -> Arc<[u8]> {
        if let Some(b) = self.blocks.get(&key) {
            self.hits += 1;
            return b.clone();
        }
        self.misses += 1;
        if self.blocks.len() >= BATCH_CACHE_CAP {
            self.blocks.clear();
        }
        let block: Arc<[u8]> = encode().into();
        self.blocks.insert(key, block.clone());
        block
    }

    /// Encoded block for a shared log batch: `[count u32][LogEntry...]`.
    pub fn log_batch<T: WalEncode>(&mut self, batch: &EntryBatch<T>) -> Arc<[u8]> {
        let key = (Arc::as_ptr(batch) as *const u8 as usize, batch.len());
        self.memoized(key, || {
            let mut buf = Vec::new();
            buf.extend_from_slice(&(batch.len() as u32).to_le_bytes());
            for e in batch.iter() {
                put_log_entry(&mut buf, e);
            }
            buf
        })
    }

    /// Encoded block for a shared migration segment: `[count u32][[len
    /// u32][T]...]`.
    pub fn entry_slice<T: WalEncode>(&mut self, entries: &Arc<[T]>) -> Arc<[u8]> {
        let key = (Arc::as_ptr(entries) as *const u8 as usize, entries.len());
        self.memoized(key, || {
            let mut buf = Vec::new();
            buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            let mut scratch = Vec::new();
            for e in entries.iter() {
                scratch.clear();
                e.encode(&mut scratch);
                put_bytes(&mut buf, &scratch);
            }
            buf
        })
    }
}

// ---------------------------------------------------------------------------
// Log entries.

/// Append one log entry: `[kind u8][len u32][payload]`.
pub fn put_log_entry<T: WalEncode>(buf: &mut Vec<u8>, e: &LogEntry<T>) {
    match e {
        LogEntry::Normal(t) => {
            buf.push(0);
            let mut inner = Vec::new();
            t.encode(&mut inner);
            put_bytes(buf, &inner);
        }
        LogEntry::StopSign(ss) => {
            buf.push(1);
            let mut inner = Vec::new();
            put_stop_sign(&mut inner, ss);
            put_bytes(buf, &inner);
        }
    }
}

/// Read one log entry written by [`put_log_entry`].
pub fn get_log_entry<T: WalEncode>(r: &mut Reader) -> Result<LogEntry<T>, WireError> {
    let kind = r.u8("LogEntry kind")?;
    let inner = r.bytes("LogEntry payload")?;
    match kind {
        0 => T::decode(inner)
            .map(LogEntry::Normal)
            .ok_or(WireError::InvalidPayload { what: "LogEntry" }),
        1 => {
            let mut ir = Reader::new(inner);
            let ss = get_stop_sign(&mut ir)?;
            Ok(LogEntry::stopsign(ss))
        }
        v => Err(WireError::UnknownDiscriminant {
            what: "LogEntry",
            value: v,
        }),
    }
}

fn put_stop_sign(buf: &mut Vec<u8>, ss: &StopSign) {
    buf.extend_from_slice(&ss.config_id.to_le_bytes());
    buf.extend_from_slice(&(ss.next_nodes.len() as u32).to_le_bytes());
    for &p in &ss.next_nodes {
        buf.extend_from_slice(&p.to_le_bytes());
    }
    put_bytes(buf, &ss.metadata);
}

fn get_stop_sign(r: &mut Reader) -> Result<StopSign, WireError> {
    let config_id = r.u32("StopSign config_id")?;
    let n = r.count(8, "StopSign nodes")?;
    let mut next_nodes = Vec::with_capacity(n);
    for _ in 0..n {
        next_nodes.push(r.u64("StopSign node")?);
    }
    let metadata = r.bytes("StopSign metadata")?.to_vec();
    let mut ss = StopSign::new(config_id, next_nodes);
    ss.metadata = metadata;
    Ok(ss)
}

fn get_entries<T: WalEncode>(r: &mut Reader) -> Result<Vec<LogEntry<T>>, WireError> {
    // One entry is at least kind + len = 5 bytes.
    let n = r.count(5, "entries")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_log_entry(r)?);
    }
    Ok(out)
}

fn put_snapshot_data(buf: &mut Vec<u8>, d: &SnapshotData) {
    put_bytes(buf, d);
}

fn get_snapshot_data(r: &mut Reader) -> Result<SnapshotData, WireError> {
    Ok(r.bytes("snapshot data")?.into())
}

// ---------------------------------------------------------------------------
// The `Wire` trait and message impls.

/// Byte encoding for an addressed protocol message. Encoding threads a
/// [`BatchCache`] so refcount-shared payloads serialize once per fan-out.
pub trait Wire: Sized {
    /// Append this message's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>, cache: &mut BatchCache);
    /// Decode one message. Must consume exactly the bytes written by
    /// `encode` and never panic on malformed input.
    fn decode(r: &mut Reader) -> Result<Self, WireError>;

    /// Convenience: encode into a fresh buffer with a throwaway cache.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf, &mut BatchCache::new());
        buf
    }

    /// Convenience: decode a full buffer, requiring it to be consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(WireError::InvalidPayload {
                what: "trailing bytes",
            });
        }
        Ok(v)
    }
}

impl<T: WalEncode> Wire for PaxosMsg<T> {
    fn encode(&self, buf: &mut Vec<u8>, cache: &mut BatchCache) {
        buf.push(self.discriminant());
        match self {
            PaxosMsg::PrepareReq => {}
            PaxosMsg::Prepare(p) => {
                put_ballot(buf, p.n);
                buf.extend_from_slice(&p.decided_idx.to_le_bytes());
                put_ballot(buf, p.accepted_rnd);
                buf.extend_from_slice(&p.log_idx.to_le_bytes());
            }
            PaxosMsg::Promise(p) => {
                put_ballot(buf, p.n);
                put_ballot(buf, p.accepted_rnd);
                buf.extend_from_slice(&p.log_idx.to_le_bytes());
                buf.extend_from_slice(&p.decided_idx.to_le_bytes());
                buf.extend_from_slice(&p.suffix_start.to_le_bytes());
                buf.extend_from_slice(&(p.suffix.len() as u32).to_le_bytes());
                for e in &p.suffix {
                    put_log_entry(buf, e);
                }
                match &p.snapshot {
                    Some((idx, data)) => {
                        buf.push(1);
                        buf.extend_from_slice(&idx.to_le_bytes());
                        put_snapshot_data(buf, data);
                    }
                    None => buf.push(0),
                }
            }
            PaxosMsg::AcceptSync(a) => {
                put_ballot(buf, a.n);
                buf.extend_from_slice(&a.sync_idx.to_le_bytes());
                buf.extend_from_slice(&a.decided_idx.to_le_bytes());
                buf.extend_from_slice(&cache.log_batch(&a.suffix));
            }
            PaxosMsg::AcceptDecide(a) => {
                put_ballot(buf, a.n);
                buf.extend_from_slice(&a.start_idx.to_le_bytes());
                buf.extend_from_slice(&a.decided_idx.to_le_bytes());
                buf.extend_from_slice(&cache.log_batch(&a.entries));
            }
            PaxosMsg::Accepted(a) => {
                put_ballot(buf, a.n);
                buf.extend_from_slice(&a.log_idx.to_le_bytes());
            }
            PaxosMsg::Decide(d) => {
                put_ballot(buf, d.n);
                buf.extend_from_slice(&d.decided_idx.to_le_bytes());
            }
            PaxosMsg::SnapshotMeta(m) => {
                put_ballot(buf, m.n);
                buf.extend_from_slice(&m.snapshot_idx.to_le_bytes());
                buf.extend_from_slice(&m.total_bytes.to_le_bytes());
            }
            PaxosMsg::SnapshotChunk(c) => {
                put_ballot(buf, c.n);
                buf.extend_from_slice(&c.snapshot_idx.to_le_bytes());
                buf.extend_from_slice(&c.offset.to_le_bytes());
                buf.extend_from_slice(&c.total_bytes.to_le_bytes());
                put_snapshot_data(buf, &c.data);
            }
            PaxosMsg::SnapshotAck(a) => {
                put_ballot(buf, a.n);
                buf.extend_from_slice(&a.snapshot_idx.to_le_bytes());
                buf.extend_from_slice(&a.received.to_le_bytes());
            }
            PaxosMsg::ProposalForward(es) => {
                buf.extend_from_slice(&(es.len() as u32).to_le_bytes());
                for e in es {
                    put_log_entry(buf, e);
                }
            }
            PaxosMsg::ReadIndexReq(r) => {
                buf.extend_from_slice(&r.token.to_le_bytes());
            }
            PaxosMsg::ReadIndexResp(r) => {
                buf.extend_from_slice(&r.token.to_le_bytes());
                buf.extend_from_slice(&r.idx.to_le_bytes());
            }
            PaxosMsg::ReadCheck(c) => {
                put_ballot(buf, c.n);
                buf.extend_from_slice(&c.seq.to_le_bytes());
            }
            PaxosMsg::ReadCheckAck(a) => {
                put_ballot(buf, a.n);
                buf.extend_from_slice(&a.seq.to_le_bytes());
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let disc = r.u8("PaxosMsg discriminant")?;
        Ok(match disc {
            0 => PaxosMsg::PrepareReq,
            1 => PaxosMsg::Prepare(Prepare {
                n: r.ballot("Prepare.n")?,
                decided_idx: r.u64("Prepare.decided_idx")?,
                accepted_rnd: r.ballot("Prepare.accepted_rnd")?,
                log_idx: r.u64("Prepare.log_idx")?,
            }),
            2 => {
                let n = r.ballot("Promise.n")?;
                let accepted_rnd = r.ballot("Promise.accepted_rnd")?;
                let log_idx = r.u64("Promise.log_idx")?;
                let decided_idx = r.u64("Promise.decided_idx")?;
                let suffix_start = r.u64("Promise.suffix_start")?;
                let suffix = get_entries(r)?;
                let snapshot = match r.u8("Promise.snapshot flag")? {
                    0 => None,
                    1 => {
                        let idx = r.u64("Promise.snapshot idx")?;
                        Some((idx, get_snapshot_data(r)?))
                    }
                    v => {
                        return Err(WireError::UnknownDiscriminant {
                            what: "Promise.snapshot flag",
                            value: v,
                        })
                    }
                };
                PaxosMsg::Promise(Promise {
                    n,
                    accepted_rnd,
                    log_idx,
                    decided_idx,
                    suffix_start,
                    suffix,
                    snapshot,
                })
            }
            3 => PaxosMsg::AcceptSync(AcceptSync {
                n: r.ballot("AcceptSync.n")?,
                sync_idx: r.u64("AcceptSync.sync_idx")?,
                decided_idx: r.u64("AcceptSync.decided_idx")?,
                suffix: get_entries(r)?.into(),
            }),
            4 => PaxosMsg::AcceptDecide(AcceptDecide {
                n: r.ballot("AcceptDecide.n")?,
                start_idx: r.u64("AcceptDecide.start_idx")?,
                decided_idx: r.u64("AcceptDecide.decided_idx")?,
                entries: get_entries(r)?.into(),
            }),
            5 => PaxosMsg::Accepted(Accepted {
                n: r.ballot("Accepted.n")?,
                log_idx: r.u64("Accepted.log_idx")?,
            }),
            6 => PaxosMsg::Decide(Decide {
                n: r.ballot("Decide.n")?,
                decided_idx: r.u64("Decide.decided_idx")?,
            }),
            7 => PaxosMsg::SnapshotMeta(SnapshotMeta {
                n: r.ballot("SnapshotMeta.n")?,
                snapshot_idx: r.u64("SnapshotMeta.snapshot_idx")?,
                total_bytes: r.u64("SnapshotMeta.total_bytes")?,
            }),
            8 => PaxosMsg::SnapshotChunk(SnapshotChunk {
                n: r.ballot("SnapshotChunk.n")?,
                snapshot_idx: r.u64("SnapshotChunk.snapshot_idx")?,
                offset: r.u64("SnapshotChunk.offset")?,
                total_bytes: r.u64("SnapshotChunk.total_bytes")?,
                data: get_snapshot_data(r)?,
            }),
            9 => PaxosMsg::SnapshotAck(SnapshotAck {
                n: r.ballot("SnapshotAck.n")?,
                snapshot_idx: r.u64("SnapshotAck.snapshot_idx")?,
                received: r.u64("SnapshotAck.received")?,
            }),
            10 => PaxosMsg::ProposalForward(get_entries(r)?),
            11 => PaxosMsg::ReadIndexReq(ReadIndexReq {
                token: r.u64("ReadIndexReq.token")?,
            }),
            12 => PaxosMsg::ReadIndexResp(ReadIndexResp {
                token: r.u64("ReadIndexResp.token")?,
                idx: r.u64("ReadIndexResp.idx")?,
            }),
            13 => PaxosMsg::ReadCheck(ReadCheck {
                n: r.ballot("ReadCheck.n")?,
                seq: r.u64("ReadCheck.seq")?,
            }),
            14 => PaxosMsg::ReadCheckAck(ReadCheckAck {
                n: r.ballot("ReadCheckAck.n")?,
                seq: r.u64("ReadCheckAck.seq")?,
            }),
            v => {
                return Err(WireError::UnknownDiscriminant {
                    what: "PaxosMsg",
                    value: v,
                })
            }
        })
    }
}

impl<T: WalEncode> Wire for Message<T> {
    fn encode(&self, buf: &mut Vec<u8>, cache: &mut BatchCache) {
        buf.extend_from_slice(&self.from.to_le_bytes());
        buf.extend_from_slice(&self.to.to_le_bytes());
        self.msg.encode(buf, cache);
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(Message {
            from: r.u64("Message.from")?,
            to: r.u64("Message.to")?,
            msg: PaxosMsg::decode(r)?,
        })
    }
}

impl Wire for BleMsg {
    fn encode(&self, buf: &mut Vec<u8>, _cache: &mut BatchCache) {
        buf.push(self.discriminant());
        match self {
            BleMsg::HeartbeatRequest { round } => {
                buf.extend_from_slice(&round.to_le_bytes());
            }
            BleMsg::HeartbeatReply {
                round,
                ballot,
                quorum_connected,
            } => {
                buf.extend_from_slice(&round.to_le_bytes());
                put_ballot(buf, *ballot);
                buf.push(*quorum_connected as u8);
            }
            BleMsg::HeartbeatReplyLease {
                round,
                ballot,
                quorum_connected,
                lease,
            } => {
                buf.extend_from_slice(&round.to_le_bytes());
                put_ballot(buf, *ballot);
                buf.push(*quorum_connected as u8);
                buf.push(*lease as u8);
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let disc = r.u8("BleMsg discriminant")?;
        Ok(match disc {
            0 => BleMsg::HeartbeatRequest {
                round: r.u64("HeartbeatRequest.round")?,
            },
            1 => BleMsg::HeartbeatReply {
                round: r.u64("HeartbeatReply.round")?,
                ballot: r.ballot("HeartbeatReply.ballot")?,
                quorum_connected: r.bool("HeartbeatReply.quorum_connected")?,
            },
            2 => BleMsg::HeartbeatReplyLease {
                round: r.u64("HeartbeatReplyLease.round")?,
                ballot: r.ballot("HeartbeatReplyLease.ballot")?,
                quorum_connected: r.bool("HeartbeatReplyLease.quorum_connected")?,
                lease: r.bool("HeartbeatReplyLease.lease")?,
            },
            v => {
                return Err(WireError::UnknownDiscriminant {
                    what: "BleMsg",
                    value: v,
                })
            }
        })
    }
}

impl Wire for BleMessage {
    fn encode(&self, buf: &mut Vec<u8>, cache: &mut BatchCache) {
        buf.extend_from_slice(&self.from.to_le_bytes());
        buf.extend_from_slice(&self.to.to_le_bytes());
        self.msg.encode(buf, cache);
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(BleMessage {
            from: r.u64("BleMessage.from")?,
            to: r.u64("BleMessage.to")?,
            msg: BleMsg::decode(r)?,
        })
    }
}

impl<T: WalEncode> Wire for OmniMessage<T> {
    fn encode(&self, buf: &mut Vec<u8>, cache: &mut BatchCache) {
        buf.push(self.discriminant());
        match self {
            OmniMessage::Paxos(m) => m.encode(buf, cache),
            OmniMessage::Ble(m) => m.encode(buf, cache),
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let disc = r.u8("OmniMessage discriminant")?;
        Ok(match disc {
            0 => OmniMessage::Paxos(Message::decode(r)?),
            1 => OmniMessage::Ble(BleMessage::decode(r)?),
            v => {
                return Err(WireError::UnknownDiscriminant {
                    what: "OmniMessage",
                    value: v,
                })
            }
        })
    }
}

impl<T: WalEncode> Wire for ServiceMsg<T> {
    fn encode(&self, buf: &mut Vec<u8>, cache: &mut BatchCache) {
        buf.push(self.discriminant());
        match self {
            ServiceMsg::Omni { config_id, msg } => {
                buf.extend_from_slice(&config_id.to_le_bytes());
                msg.encode(buf, cache);
            }
            ServiceMsg::StartConfig {
                ss,
                old_nodes,
                log_len,
                snap_idx,
            } => {
                put_stop_sign(buf, ss);
                buf.extend_from_slice(&(old_nodes.len() as u32).to_le_bytes());
                for &p in old_nodes {
                    buf.extend_from_slice(&p.to_le_bytes());
                }
                buf.extend_from_slice(&log_len.to_le_bytes());
                buf.extend_from_slice(&snap_idx.to_le_bytes());
            }
            ServiceMsg::ConfigStarted { config_id } => {
                buf.extend_from_slice(&config_id.to_le_bytes());
            }
            ServiceMsg::SegmentReq { from, to } => {
                buf.extend_from_slice(&from.to_le_bytes());
                buf.extend_from_slice(&to.to_le_bytes());
            }
            ServiceMsg::SegmentResp {
                start,
                entries,
                served_to,
                requested_to,
            } => {
                buf.extend_from_slice(&start.to_le_bytes());
                buf.extend_from_slice(&cache.entry_slice(entries));
                buf.extend_from_slice(&served_to.to_le_bytes());
                buf.extend_from_slice(&requested_to.to_le_bytes());
            }
            ServiceMsg::SnapReq { offset } => {
                buf.extend_from_slice(&offset.to_le_bytes());
            }
            ServiceMsg::SnapResp {
                idx,
                offset,
                chunk,
                total,
            } => {
                buf.extend_from_slice(&idx.to_le_bytes());
                buf.extend_from_slice(&offset.to_le_bytes());
                put_bytes(buf, chunk);
                buf.extend_from_slice(&total.to_le_bytes());
            }
            ServiceMsg::Group { group, msg } => {
                buf.extend_from_slice(&group.to_le_bytes());
                msg.encode(buf, cache);
            }
            ServiceMsg::GroupBle { beats } => {
                buf.extend_from_slice(&(beats.len() as u32).to_le_bytes());
                for (group, config_id, ble) in beats {
                    buf.extend_from_slice(&group.to_le_bytes());
                    buf.extend_from_slice(&config_id.to_le_bytes());
                    ble.encode(buf, cache);
                }
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let disc = r.u8("ServiceMsg discriminant")?;
        Ok(match disc {
            0 => ServiceMsg::Omni {
                config_id: r.u32("ServiceMsg.config_id")?,
                msg: OmniMessage::decode(r)?,
            },
            1 => {
                let ss = get_stop_sign(r)?;
                let n = r.count(8, "StartConfig.old_nodes")?;
                let mut old_nodes = Vec::with_capacity(n);
                for _ in 0..n {
                    old_nodes.push(r.u64("StartConfig.old_node")?);
                }
                ServiceMsg::StartConfig {
                    ss,
                    old_nodes,
                    log_len: r.u64("StartConfig.log_len")?,
                    snap_idx: r.u64("StartConfig.snap_idx")?,
                }
            }
            2 => ServiceMsg::ConfigStarted {
                config_id: r.u32("ConfigStarted.config_id")?,
            },
            3 => ServiceMsg::SegmentReq {
                from: r.u64("SegmentReq.from")?,
                to: r.u64("SegmentReq.to")?,
            },
            4 => {
                let start = r.u64("SegmentResp.start")?;
                // One element is at least its u32 length prefix.
                let n = r.count(4, "SegmentResp.entries")?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let bytes = r.bytes("SegmentResp.entry")?;
                    entries.push(T::decode(bytes).ok_or(WireError::InvalidPayload {
                        what: "SegmentResp.entry",
                    })?);
                }
                ServiceMsg::SegmentResp {
                    start,
                    entries: entries.into(),
                    served_to: r.u64("SegmentResp.served_to")?,
                    requested_to: r.u64("SegmentResp.requested_to")?,
                }
            }
            5 => ServiceMsg::SnapReq {
                offset: r.u64("SnapReq.offset")?,
            },
            6 => ServiceMsg::SnapResp {
                idx: r.u64("SnapResp.idx")?,
                offset: r.u64("SnapResp.offset")?,
                chunk: r.bytes("SnapResp.chunk")?.into(),
                total: r.u64("SnapResp.total")?,
            },
            7 => {
                let group = r.u32("Group.group")?;
                let msg = ServiceMsg::decode(r)?;
                // Envelopes never nest: the inner message is a plain
                // protocol message. Rejecting nesting here also bounds
                // decode recursion on hostile input.
                if matches!(msg, ServiceMsg::Group { .. } | ServiceMsg::GroupBle { .. }) {
                    return Err(WireError::InvalidPayload {
                        what: "Group.msg (nested envelope)",
                    });
                }
                ServiceMsg::Group {
                    group,
                    msg: Box::new(msg),
                }
            }
            8 => {
                // One beat is at least group + config_id + a minimal
                // BleMessage (from + to + HeartbeatRequest round).
                let n = r.count(33, "GroupBle.beats")?;
                let mut beats = Vec::with_capacity(n);
                for _ in 0..n {
                    let group = r.u32("GroupBle.group")?;
                    let config_id = r.u32("GroupBle.config_id")?;
                    beats.push((group, config_id, BleMessage::decode(r)?));
                }
                ServiceMsg::GroupBle { beats }
            }
            v => {
                return Err(WireError::UnknownDiscriminant {
                    what: "ServiceMsg",
                    value: v,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: Wire + PartialEq + std::fmt::Debug>(m: &M) {
        let bytes = m.to_bytes();
        let back = M::from_bytes(&bytes).expect("decode");
        assert_eq!(&back, m);
    }

    #[test]
    fn paxos_messages_roundtrip() {
        let b = Ballot::new(3, 1, 2);
        let msgs: Vec<PaxosMsg<u64>> = vec![
            PaxosMsg::PrepareReq,
            PaxosMsg::Prepare(Prepare {
                n: b,
                decided_idx: 7,
                accepted_rnd: Ballot::bottom(),
                log_idx: 9,
            }),
            PaxosMsg::Promise(Promise {
                n: b,
                accepted_rnd: b,
                log_idx: 5,
                decided_idx: 3,
                suffix_start: 3,
                suffix: vec![
                    LogEntry::Normal(1),
                    LogEntry::stopsign(StopSign::new(2, vec![1, 2])),
                ],
                snapshot: Some((3, vec![1u8, 2, 3].into())),
            }),
            PaxosMsg::AcceptSync(AcceptSync {
                n: b,
                sync_idx: 2,
                decided_idx: 1,
                suffix: vec![LogEntry::Normal(10), LogEntry::Normal(11)].into(),
            }),
            PaxosMsg::AcceptDecide(AcceptDecide {
                n: b,
                start_idx: 4,
                decided_idx: 4,
                entries: vec![LogEntry::Normal(42)].into(),
            }),
            PaxosMsg::Accepted(Accepted { n: b, log_idx: 5 }),
            PaxosMsg::Decide(Decide {
                n: b,
                decided_idx: 5,
            }),
            PaxosMsg::SnapshotMeta(SnapshotMeta {
                n: b,
                snapshot_idx: 100,
                total_bytes: 4096,
            }),
            PaxosMsg::SnapshotChunk(SnapshotChunk {
                n: b,
                snapshot_idx: 100,
                offset: 512,
                total_bytes: 4096,
                data: vec![9u8; 64].into(),
            }),
            PaxosMsg::SnapshotAck(SnapshotAck {
                n: b,
                snapshot_idx: 100,
                received: 576,
            }),
            PaxosMsg::ProposalForward(vec![LogEntry::Normal(1), LogEntry::Normal(2)]),
            PaxosMsg::ReadIndexReq(ReadIndexReq { token: 77 }),
            PaxosMsg::ReadIndexResp(ReadIndexResp { token: 77, idx: 41 }),
            PaxosMsg::ReadCheck(ReadCheck { n: b, seq: 6 }),
            PaxosMsg::ReadCheckAck(ReadCheckAck { n: b, seq: 6 }),
        ];
        for m in &msgs {
            roundtrip(m);
        }
    }

    #[test]
    fn addressed_and_service_messages_roundtrip() {
        let b = Ballot::new(2, 0, 1);
        let omni: OmniMessage<u64> = OmniMessage::Ble(BleMessage {
            from: 1,
            to: 2,
            msg: BleMsg::HeartbeatReply {
                round: 9,
                ballot: b,
                quorum_connected: true,
            },
        });
        roundtrip(&omni);
        let lease: OmniMessage<u64> = OmniMessage::Ble(BleMessage {
            from: 2,
            to: 1,
            msg: BleMsg::HeartbeatReplyLease {
                round: 9,
                ballot: b,
                quorum_connected: true,
                lease: true,
            },
        });
        roundtrip(&lease);
        let svc: Vec<ServiceMsg<u64>> = vec![
            ServiceMsg::Omni {
                config_id: 2,
                msg: OmniMessage::Paxos(Message::with(1, 3, PaxosMsg::PrepareReq)),
            },
            ServiceMsg::StartConfig {
                ss: StopSign::new(2, vec![1, 2, 4]),
                old_nodes: vec![1, 2, 3],
                log_len: 100,
                snap_idx: 40,
            },
            ServiceMsg::ConfigStarted { config_id: 2 },
            ServiceMsg::SegmentReq { from: 0, to: 50 },
            ServiceMsg::SegmentResp {
                start: 0,
                entries: vec![1u64, 2, 3].into(),
                served_to: 3,
                requested_to: 50,
            },
            ServiceMsg::SnapReq { offset: 128 },
            ServiceMsg::SnapResp {
                idx: 40,
                offset: 128,
                chunk: vec![5u8; 32].into(),
                total: 4096,
            },
        ];
        for m in &svc {
            roundtrip(m);
        }
    }

    #[test]
    fn shared_batch_encodes_once_per_cycle() {
        let batch: EntryBatch<u64> = (0..100).map(LogEntry::Normal).collect::<Vec<_>>().into();
        let mut cache = BatchCache::new();
        let fanout: Vec<Message<u64>> = (2..=4)
            .map(|to| {
                Message::with(
                    1,
                    to,
                    PaxosMsg::AcceptDecide(AcceptDecide {
                        n: Ballot::new(1, 0, 1),
                        start_idx: 0,
                        decided_idx: 0,
                        entries: batch.clone(),
                    }),
                )
            })
            .collect();
        let encoded: Vec<Vec<u8>> = fanout
            .iter()
            .map(|m| {
                let mut buf = Vec::new();
                m.encode(&mut buf, &mut cache);
                buf
            })
            .collect();
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1, "batch must serialize exactly once");
        assert_eq!(hits, 2, "remaining fan-out reuses the bytes");
        // And the cached bytes decode identically for every follower.
        for (m, bytes) in fanout.iter().zip(&encoded) {
            assert_eq!(&Message::<u64>::from_bytes(bytes).unwrap(), m);
        }
    }

    #[test]
    fn unknown_discriminant_is_typed_not_panic() {
        let err = PaxosMsg::<u64>::from_bytes(&[200]).unwrap_err();
        assert_eq!(
            err,
            WireError::UnknownDiscriminant {
                what: "PaxosMsg",
                value: 200
            }
        );
    }

    #[test]
    fn truncation_is_typed_not_panic() {
        let m: PaxosMsg<u64> = PaxosMsg::Accepted(Accepted {
            n: Ballot::new(1, 0, 1),
            log_idx: 77,
        });
        let bytes = m.to_bytes();
        for cut in 0..bytes.len() {
            let err = PaxosMsg::<u64>::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn hostile_count_is_rejected_without_allocation() {
        // AcceptDecide with a 4-billion entry count but no entry bytes.
        let mut buf = Vec::new();
        buf.push(4u8); // AcceptDecide
        put_ballot(&mut buf, Ballot::new(1, 0, 1));
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = PaxosMsg::<u64>::from_bytes(&buf).unwrap_err();
        assert!(matches!(err, WireError::BadLength { .. }), "{err:?}");
    }

    #[test]
    fn checksum_matches_wal_discipline() {
        // Same FNV-1a basis and prime as the WAL's record checksum.
        assert_eq!(checksum(&[]), 0x811c_9dc5);
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
    }
}
