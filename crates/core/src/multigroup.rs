//! Multi-group multiplexing: many independent Omni-Paxos groups over one
//! session and one amortized BLE stream.
//!
//! A *group* is a full consensus instance — its own log, ballots,
//! snapshots and reconfiguration — identified by a `u32` group id. All
//! groups of a node share its transport sessions: every consensus frame
//! carries a wire-level [`ServiceMsg::Group`] envelope naming its group,
//! and all groups' ballot-leader-election heartbeats to one peer are
//! coalesced into a single [`ServiceMsg::GroupBle`] frame per flush, so
//! the failure-detector cost stays per-*peer*, not per-group.
//!
//! Backward compatibility is by convention: a bare, un-enveloped message
//! is group 0. A single-group deployment therefore emits exactly the
//! pre-envelope wire format ([`mux`] with one group passes messages
//! through bare), and an enveloped `Group { group: 0, .. }` frame is
//! accepted by single-group servers.

use crate::ballot::NodeId;
use crate::messages::BleMessage;
use crate::omni::OmniMessage;
use crate::service::ServiceMsg;
use std::collections::BTreeMap;

/// Wrap one group's outgoing message for the shared session.
///
/// Group 0 stays bare (the backward-compatible encoding); other groups
/// get the [`ServiceMsg::Group`] envelope. BLE traffic is better routed
/// through a [`BleCoalescer`] — this helper envelopes whatever it is
/// given.
pub fn envelope<T>(group: u32, msg: ServiceMsg<T>) -> ServiceMsg<T> {
    if group == 0 {
        msg
    } else {
        ServiceMsg::Group {
            group,
            msg: Box::new(msg),
        }
    }
}

/// Open one incoming frame into `(group, message)` deliveries.
///
/// Bare messages are group 0; a `Group` envelope names its group; a
/// `GroupBle` carrier fans out into one `Omni`/BLE delivery per beat.
pub fn demux<T>(msg: ServiceMsg<T>) -> Vec<(u32, ServiceMsg<T>)> {
    match msg {
        ServiceMsg::Group { group, msg } => vec![(group, *msg)],
        ServiceMsg::GroupBle { beats } => beats
            .into_iter()
            .map(|(group, config_id, ble)| {
                (
                    group,
                    ServiceMsg::Omni {
                        config_id,
                        msg: OmniMessage::Ble(ble),
                    },
                )
            })
            .collect(),
        bare => vec![(0, bare)],
    }
}

/// Per-flush collector that merges every group's BLE traffic into one
/// [`ServiceMsg::GroupBle`] frame per destination peer.
///
/// The heartbeat pattern of BLE is periodic and per-peer; with G groups a
/// naive multiplexer would send G heartbeat frames per peer per round.
/// The coalescer keeps that at one frame carrying G small beats — the
/// "single shared BLE stream with per-group ballots".
#[derive(Debug, Default)]
pub struct BleCoalescer {
    // BTreeMap so flush order is deterministic (simulator replays).
    beats: BTreeMap<NodeId, Vec<(u32, u32, BleMessage)>>,
}

impl BleCoalescer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue one group's BLE message for its destination.
    pub fn push(&mut self, group: u32, config_id: u32, msg: BleMessage) {
        self.beats
            .entry(msg.to)
            .or_default()
            .push((group, config_id, msg));
    }

    /// Drain everything queued: one `GroupBle` frame per peer.
    pub fn flush<T>(&mut self) -> Vec<(NodeId, ServiceMsg<T>)> {
        std::mem::take(&mut self.beats)
            .into_iter()
            .map(|(to, beats)| (to, ServiceMsg::GroupBle { beats }))
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.beats.is_empty()
    }
}

/// Multiplex one group's drained outgoing queue onto the shared session.
///
/// BLE messages are diverted into `ble` (coalesced later, once per peer);
/// everything else is enveloped per [`envelope`]. With `n_groups == 1`
/// the output is bit-identical to the un-multiplexed protocol: bare
/// messages, BLE included, nothing coalesced.
pub fn mux<T>(
    group: u32,
    n_groups: usize,
    outgoing: Vec<(NodeId, ServiceMsg<T>)>,
    ble: &mut BleCoalescer,
    out: &mut Vec<(NodeId, ServiceMsg<T>)>,
) {
    for (to, msg) in outgoing {
        if n_groups == 1 {
            out.push((to, msg));
            continue;
        }
        match msg {
            ServiceMsg::Omni {
                config_id,
                msg: OmniMessage::Ble(b),
            } => ble.push(group, config_id, b),
            other => out.push((to, envelope(group, other))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ballot::Ballot;
    use crate::messages::BleMsg;

    fn hb_req(from: NodeId, to: NodeId, round: u64) -> BleMessage {
        BleMessage {
            from,
            to,
            msg: BleMsg::HeartbeatRequest { round },
        }
    }

    fn omni_ble(config_id: u32, b: BleMessage) -> ServiceMsg<u64> {
        ServiceMsg::Omni {
            config_id,
            msg: OmniMessage::Ble(b),
        }
    }

    #[test]
    fn group_zero_stays_bare_and_demuxes_to_zero() {
        let m: ServiceMsg<u64> = ServiceMsg::SnapReq { offset: 9 };
        let wrapped = envelope(0, m.clone());
        assert_eq!(wrapped, m, "group 0 is the bare wire format");
        assert_eq!(demux(wrapped), vec![(0, m)]);
    }

    #[test]
    fn nonzero_groups_envelope_and_roundtrip() {
        let m: ServiceMsg<u64> = ServiceMsg::SegmentReq { from: 2, to: 5 };
        let wrapped = envelope(3, m.clone());
        assert!(matches!(wrapped, ServiceMsg::Group { group: 3, .. }));
        assert_eq!(demux(wrapped), vec![(3, m)]);
    }

    #[test]
    fn ble_coalesces_one_frame_per_peer() {
        let mut ble = BleCoalescer::new();
        ble.push(0, 1, hb_req(1, 2, 7));
        ble.push(1, 1, hb_req(1, 2, 7));
        ble.push(2, 1, hb_req(1, 3, 7));
        let frames: Vec<(NodeId, ServiceMsg<u64>)> = ble.flush();
        assert_eq!(frames.len(), 2, "one GroupBle per destination peer");
        let to2 = frames.iter().find(|(to, _)| *to == 2).unwrap();
        match &to2.1 {
            ServiceMsg::GroupBle { beats } => {
                assert_eq!(beats.len(), 2);
                assert_eq!(beats[0].0, 0);
                assert_eq!(beats[1].0, 1);
            }
            other => panic!("expected GroupBle, got {other:?}"),
        }
        assert!(ble.is_empty());
    }

    #[test]
    fn groupble_demuxes_to_per_group_omni() {
        let beats = vec![(0, 1, hb_req(1, 2, 4)), (2, 3, hb_req(1, 2, 4))];
        let deliveries = demux::<u64>(ServiceMsg::GroupBle { beats });
        assert_eq!(deliveries.len(), 2);
        assert_eq!(deliveries[0].0, 0);
        assert_eq!(deliveries[1].0, 2);
        assert!(matches!(
            &deliveries[1].1,
            ServiceMsg::Omni {
                config_id: 3,
                msg: OmniMessage::Ble(_)
            }
        ));
    }

    #[test]
    fn single_group_mux_is_passthrough() {
        let out_msgs = vec![
            (2 as NodeId, omni_ble(1, hb_req(1, 2, 5))),
            (3 as NodeId, ServiceMsg::SnapReq { offset: 0 }),
        ];
        let mut ble = BleCoalescer::new();
        let mut out = Vec::new();
        mux(0, 1, out_msgs.clone(), &mut ble, &mut out);
        assert_eq!(out, out_msgs, "single-group wire format is unchanged");
        assert!(ble.is_empty(), "nothing coalesced in single-group mode");
    }

    #[test]
    fn multi_group_mux_envelopes_and_diverts_ble() {
        let out_msgs = vec![
            (2 as NodeId, omni_ble(1, hb_req(1, 2, 5))),
            (3 as NodeId, ServiceMsg::SnapReq { offset: 0 }),
        ];
        let mut ble = BleCoalescer::new();
        let mut out = Vec::new();
        mux(1, 4, out_msgs, &mut ble, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0].1, ServiceMsg::Group { group: 1, .. }));
        assert!(!ble.is_empty());
        let frames: Vec<(NodeId, ServiceMsg<u64>)> = ble.flush();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].0, 2);
    }

    #[test]
    fn enveloped_frames_roundtrip_on_the_wire() {
        use crate::wire::Wire;
        let b = Ballot::new(4, 0, 2);
        let msgs: Vec<ServiceMsg<u64>> = vec![
            envelope(7, ServiceMsg::SnapReq { offset: 11 }),
            ServiceMsg::GroupBle {
                beats: vec![
                    (0, 1, hb_req(1, 2, 9)),
                    (
                        5,
                        2,
                        BleMessage {
                            from: 1,
                            to: 2,
                            msg: BleMsg::HeartbeatReply {
                                round: 9,
                                ballot: b,
                                quorum_connected: true,
                            },
                        },
                    ),
                ],
            },
        ];
        for m in &msgs {
            let bytes = m.to_bytes();
            assert_eq!(&ServiceMsg::<u64>::from_bytes(&bytes).unwrap(), m);
        }
    }
}
