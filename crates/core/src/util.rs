//! Common types: entries, log entries, stop-signs, and quorum arithmetic.

use crate::ballot::NodeId;

/// A client command that can be replicated.
///
/// `size_bytes` feeds the IO accounting of the evaluation harness (the paper
/// measures outgoing traffic volume in §7.3); it should approximate the
/// wire size of the encoded entry. The paper's workload uses 8-byte no-op
/// commands, which is the default.
pub trait Entry: Clone + std::fmt::Debug {
    /// Approximate encoded size of this entry in bytes.
    fn size_bytes(&self) -> usize {
        8
    }
}

impl Entry for u64 {}
impl Entry for () {
    fn size_bytes(&self) -> usize {
        0
    }
}
impl Entry for Vec<u8> {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}
impl Entry for String {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

/// The stop-sign that ends a configuration (§6). Once a stop-sign is chosen,
/// no further entries can be decided in the old configuration; the service
/// layer then starts `next_nodes` as configuration `config_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StopSign {
    /// Identifier of the configuration this stop-sign *starts*.
    pub config_id: u32,
    /// Members of the next configuration.
    pub next_nodes: Vec<NodeId>,
    /// Opaque application metadata carried into the next configuration
    /// (e.g. a software version for in-place upgrades, §6.1).
    pub metadata: Vec<u8>,
}

impl StopSign {
    /// Create a stop-sign starting `config_id` with `next_nodes`.
    pub fn new(config_id: u32, next_nodes: Vec<NodeId>) -> Self {
        StopSign {
            config_id,
            next_nodes,
            metadata: Vec::new(),
        }
    }

    /// Approximate encoded size in bytes.
    pub fn size_bytes(&self) -> usize {
        4 + self.next_nodes.len() * 8 + self.metadata.len()
    }
}

/// One slot of the replicated log: a client command or a stop-sign.
///
/// The paper replicates the stop-sign "following the normal Sequence Paxos
/// protocol" (§6), so it flows through exactly the same Prepare/Accept
/// machinery as client commands.
#[derive(Debug, Clone, PartialEq)]
pub enum LogEntry<T> {
    /// A client command.
    Normal(T),
    /// The configuration-ending stop-sign. Boxed: at most one stop-sign
    /// exists per configuration while `Normal` fills multi-million-entry
    /// logs, so the inline variant would cost every slot the stop-sign's
    /// footprint (for `u64` commands, 64 bytes instead of 16) — tripling
    /// the memory traffic of every batch copy, storage scan, and log drop
    /// on the replication hot path.
    StopSign(Box<StopSign>),
}

impl<T: Entry> LogEntry<T> {
    /// Wrap a stop-sign as a log slot.
    pub fn stopsign(ss: StopSign) -> Self {
        LogEntry::StopSign(Box::new(ss))
    }
    /// Approximate encoded size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            LogEntry::Normal(t) => t.size_bytes(),
            LogEntry::StopSign(ss) => ss.size_bytes(),
        }
    }

    /// The client command, if this is a normal entry.
    pub fn as_normal(&self) -> Option<&T> {
        match self {
            LogEntry::Normal(t) => Some(t),
            LogEntry::StopSign(_) => None,
        }
    }

    /// Is this entry a stop-sign?
    pub fn is_stopsign(&self) -> bool {
        matches!(self, LogEntry::StopSign(_))
    }
}

/// The size of a majority quorum in a cluster of `n` servers: `⌊n/2⌋ + 1`.
///
/// Quorum-connectivity (§5.1) and the chosen-entry rule (§4.1.2) both use
/// this majority.
#[inline]
pub const fn majority(n: usize) -> usize {
    n / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_matches_paper_examples() {
        assert_eq!(majority(3), 2);
        assert_eq!(majority(5), 3);
        assert_eq!(majority(4), 3);
        assert_eq!(majority(1), 1);
        assert_eq!(majority(2), 2);
    }

    #[test]
    fn entry_sizes() {
        assert_eq!(5u64.size_bytes(), 8);
        assert_eq!(().size_bytes(), 0);
        assert_eq!(vec![0u8; 17].size_bytes(), 17);
        assert_eq!("hello".to_string().size_bytes(), 5);
    }

    #[test]
    fn log_entry_accessors() {
        let n: LogEntry<u64> = LogEntry::Normal(7);
        let ss: LogEntry<u64> = LogEntry::stopsign(StopSign::new(2, vec![3, 4, 5]));
        assert_eq!(n.as_normal(), Some(&7));
        assert!(ss.as_normal().is_none());
        assert!(ss.is_stopsign());
        assert!(!n.is_stopsign());
        assert_eq!(n.size_bytes(), 8);
        assert_eq!(ss.size_bytes(), 4 + 24);
    }
}
