//! Write-ahead-log storage: a file-backed [`Storage`] implementation.
//!
//! The paper's fail-recovery model (§3) assumes that the promised round,
//! accepted round, decided index and the log survive crashes. This module
//! provides that durability with an append-only, checksummed record file:
//! every mutation updates the in-memory mirror and appends a framed,
//! checksummed record; on open, the file is replayed to rebuild the state,
//! stopping cleanly at the first torn record (a crash mid-write loses only
//! the unacknowledged tail, which is exactly what the model permits).
//!
//! The WAL rewrites itself (a *checkpoint*) once enough records accumulate,
//! so a long-lived replica's recovery time stays proportional to its live
//! state rather than its full history.
//!
//! Record framing: `[tag: u8][len: u32][payload: len bytes][crc: u32]`,
//! where `crc` is a simple FNV-1a hash over tag, length and payload.
//!
//! Mutations are **group committed**: they update the in-memory mirror
//! immediately but their records are buffered — consecutive appends
//! coalesce into a single `APPEND` record — and hit the file in one
//! `write` + one `sync_data` when [`Storage::flush`] runs (the replica
//! calls it right before releasing a batch of outgoing messages, so
//! nothing acknowledges state that is not yet durable). A crash between
//! flushes loses only unacknowledged mutations, which the fail-recovery
//! model permits.
//!
//! ## Durable-point markers and corruption detection
//!
//! After every successful `sync_data` the WAL appends a tiny `COMMIT`
//! marker whose payload is its own file offset `p` — an assertion that
//! `[0, p)` is durable (the fsync covering those bytes returned before
//! the marker was written, so the assertion holds even though the marker
//! itself is not synced; a torn marker simply fails its checksum and is
//! ignored). Replay uses the markers to tell two failures apart:
//!
//! * **Torn tail** — a bad record at or after the durable point. That is
//!   a crash mid-write of unacknowledged state, which the fail-recovery
//!   model permits: the tail is silently discarded (and physically
//!   truncated so new appends don't land after garbage).
//! * **Mid-log corruption** — a bad record *before* the durable point.
//!   That is acknowledged-durable state going bad (bit rot, a lying
//!   disk); silently truncating would un-ack acknowledged entries, so
//!   [`WalStorage::open`] fails loudly with [`WalError::Corrupt`] and the
//!   offset of the bad record. Operators restore from a peer (the
//!   protocol's snapshot/catch-up path) rather than trust the file.
//!
//! ## Failure semantics
//!
//! Every I/O failure **poisons** the WAL: buffered-but-unsynced bytes are
//! in an unknown state on disk, so all further mutations fail until
//! [`Storage::recover`] reopens and replays the file (the fsyncgate rule:
//! never retry an fsync and ack as if it had succeeded). Deterministic
//! failpoints ([`WalFault`]) let tests arm exactly one failure — a failed
//! fsync, a short write, a full disk, a crash mid-checkpoint — and assert
//! the recovery contract.

use crate::ballot::Ballot;
use crate::snapshot::{SnapshotData, SnapshotRef};
use crate::storage::{Storage, StorageError, StorageOp, TrimError};
use crate::util::{Entry, LogEntry, StopSign};
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Error opening or recovering a WAL.
#[derive(Debug)]
pub enum WalError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// A record **before the durable point** failed validation: state
    /// that was fsynced (and therefore possibly acknowledged) is gone or
    /// mangled. `offset` is the file offset of the bad record. This is
    /// never silently truncated — losing acked state must be loud.
    Corrupt { offset: u64 },
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { offset } => write!(
                f,
                "wal corrupt at offset {offset}: record before the durable point failed validation"
            ),
        }
    }
}

impl std::error::Error for WalError {}

/// A deterministic failpoint: the next matching operation fails exactly
/// as the named real-world fault would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFault {
    /// `sync_data` fails after the buffered bytes were handed to the OS
    /// (the fsyncgate scenario: on-disk state unknown).
    SyncFail,
    /// The group-commit write persists only a prefix of the buffer.
    ShortWrite,
    /// The device is full: the write fails before any byte lands.
    NoSpace,
    /// The checkpoint's temp file hits ENOSPC halfway through.
    CheckpointNoSpace,
    /// Power loss after the temp file is written and synced but before
    /// the rename — the old generation must still be recoverable.
    CheckpointCrashBeforeRename,
}

/// Entries stored in a [`WalStorage`] must be byte-encodable.
pub trait WalEncode: Entry {
    /// Append this entry's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode one entry from `buf` (the full slice written by `encode`).
    fn decode(buf: &[u8]) -> Option<Self>;
}

impl WalEncode for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Option<Self> {
        Some(u64::from_le_bytes(buf.try_into().ok()?))
    }
}

const TAG_APPEND: u8 = 1;
const TAG_TRUNCATE: u8 = 2;
const TAG_PROMISE: u8 = 3;
const TAG_ACCEPTED_ROUND: u8 = 4;
const TAG_DECIDED: u8 = 5;
const TAG_TRIM: u8 = 6;
const TAG_CHECKPOINT: u8 = 7;
/// A snapshot record: `[idx: u64][snapshot bytes]`. Trims the covered
/// prefix like `TRIM`, and the bytes supersede it as the recoverable form.
const TAG_SNAPSHOT: u8 = 8;
/// A snapshot *install* (received from a peer): same payload, but resets
/// the whole log — after replay `compacted_idx == decided_idx == idx`.
const TAG_SNAPSHOT_INSTALL: u8 = 9;
/// Durable-point marker: payload is the marker's own file offset `p`,
/// asserting `[0, p)` was covered by a completed `sync_data`. Written
/// unsynced right after each fsync (see module docs); self-validating
/// during replay (tag + length + embedded offset + checksum must all
/// agree with where the record physically sits).
const TAG_COMMIT: u8 = 10;

/// On-disk size of a COMMIT marker: tag + len + u64 payload + crc.
const MARKER_LEN: usize = 17;

/// Scan raw bytes for valid COMMIT markers (and a leading checkpoint
/// record, whose rename discipline makes it durable by construction) and
/// return the durable point: the largest offset proven covered by a
/// completed fsync. A byte-wise scan, not a record walk — corruption that
/// breaks record framing must not hide markers that sit beyond it.
fn scan_durable_point(bytes: &[u8]) -> u64 {
    let mut durable = 0u64;
    if bytes.len() >= 9 && bytes[0] == TAG_CHECKPOINT {
        let len = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes")) as usize;
        if let (Some(payload), Some(crc)) = (bytes.get(5..5 + len), bytes.get(5 + len..9 + len)) {
            let crc = u32::from_le_bytes(crc.try_into().expect("4 bytes"));
            if crc == checksum(TAG_CHECKPOINT, payload) {
                durable = (9 + len) as u64;
            }
        }
    }
    let mut q = 0usize;
    while q + MARKER_LEN <= bytes.len() {
        let is_marker = bytes[q] == TAG_COMMIT
            && bytes[q + 1..q + 5] == 8u32.to_le_bytes()
            && get_u64(bytes, q + 5) == Some(q as u64)
            && bytes[q + 13..q + 17] == checksum(TAG_COMMIT, &bytes[q + 5..q + 13]).to_le_bytes();
        if is_marker {
            durable = durable.max(q as u64);
            q += MARKER_LEN;
        } else {
            q += 1;
        }
    }
    durable
}

/// FNV-1a over the framed bytes; cheap and sufficient to detect torn
/// writes (we are not defending against bit rot here).
fn checksum(tag: u8, payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    let mut mix = |b: u8| {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    };
    mix(tag);
    for &b in &(payload.len() as u32).to_le_bytes() {
        mix(b);
    }
    for &b in payload {
        mix(b);
    }
    h
}

/// Append one framed record to `buf`.
fn frame_into(buf: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    buf.push(tag);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&checksum(tag, payload).to_le_bytes());
}

fn put_ballot(buf: &mut Vec<u8>, b: Ballot) {
    buf.extend_from_slice(&b.n.to_le_bytes());
    buf.extend_from_slice(&b.priority.to_le_bytes());
    buf.extend_from_slice(&b.pid.to_le_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(buf.get(at..at + 8)?.try_into().ok()?))
}

fn get_ballot(buf: &[u8], at: usize) -> Option<Ballot> {
    Some(Ballot::new(
        get_u64(buf, at)?,
        get_u64(buf, at + 8)?,
        get_u64(buf, at + 16)?,
    ))
}

fn put_log_entry<T: WalEncode>(buf: &mut Vec<u8>, e: &LogEntry<T>) {
    match e {
        LogEntry::Normal(t) => {
            buf.push(0);
            let mut inner = Vec::new();
            t.encode(&mut inner);
            buf.extend_from_slice(&(inner.len() as u32).to_le_bytes());
            buf.extend_from_slice(&inner);
        }
        LogEntry::StopSign(ss) => {
            buf.push(1);
            let mut inner = Vec::new();
            inner.extend_from_slice(&ss.config_id.to_le_bytes());
            inner.extend_from_slice(&(ss.next_nodes.len() as u32).to_le_bytes());
            for &p in &ss.next_nodes {
                inner.extend_from_slice(&p.to_le_bytes());
            }
            inner.extend_from_slice(&ss.metadata);
            buf.extend_from_slice(&(inner.len() as u32).to_le_bytes());
            buf.extend_from_slice(&inner);
        }
    }
}

fn get_log_entry<T: WalEncode>(buf: &[u8], at: &mut usize) -> Option<LogEntry<T>> {
    let kind = *buf.get(*at)?;
    *at += 1;
    let len = u32::from_le_bytes(buf.get(*at..*at + 4)?.try_into().ok()?) as usize;
    *at += 4;
    let inner = buf.get(*at..*at + len)?;
    *at += len;
    match kind {
        0 => Some(LogEntry::Normal(T::decode(inner)?)),
        1 => {
            let config_id = u32::from_le_bytes(inner.get(0..4)?.try_into().ok()?);
            let n = u32::from_le_bytes(inner.get(4..8)?.try_into().ok()?) as usize;
            let mut next_nodes = Vec::with_capacity(n);
            for i in 0..n {
                next_nodes.push(get_u64(inner, 8 + i * 8)?);
            }
            let metadata = inner.get(8 + n * 8..)?.to_vec();
            let mut ss = StopSign::new(config_id, next_nodes);
            ss.metadata = metadata;
            Some(LogEntry::stopsign(ss))
        }
        _ => None,
    }
}

/// Durable Sequence Paxos state: an in-memory mirror fronted by an
/// append-only record file. See the [module docs](self).
pub struct WalStorage<T: WalEncode> {
    path: PathBuf,
    file: File,
    // In-memory mirror (source of truth for reads).
    log: Vec<LogEntry<T>>,
    compacted_idx: u64,
    promise: Ballot,
    accepted_round: Ballot,
    decided_idx: u64,
    snapshot: Option<SnapshotRef>,
    /// Records appended since the last checkpoint.
    records_since_checkpoint: u64,
    /// Rewrite the file after this many records (0 = never).
    pub checkpoint_every: u64,
    /// Number of tail entries of `log` that have not been framed as an
    /// `APPEND` record yet. Consecutive appends coalesce into a single
    /// record when the next non-append record or flush materializes them.
    pending_appends: usize,
    /// Framed records awaiting the next flush (group commit buffer).
    wbuf: Vec<u8>,
    /// Current length of the backing file (tracked so durable-point
    /// markers can embed their own offset without re-stating the file).
    file_len: u64,
    /// Armed deterministic failpoint, if any (tests/chaos only).
    fault: Option<WalFault>,
    /// Set by any I/O failure: on-disk state is unknown, so every further
    /// mutation fails until [`Storage::recover`] reopens the file.
    poisoned: bool,
    /// Group-commit accounting: completed `sync_data` calls, log entries
    /// whose durability those syncs covered, and entries appended since
    /// the last completed sync (carried into the next one).
    syncs: u64,
    entries_group_committed: u64,
    entries_since_sync: u64,
}

impl<T: WalEncode> WalStorage<T> {
    /// Open (or create) the WAL at `path`, replaying any existing records.
    ///
    /// Fails with [`WalError::Corrupt`] if a record before the durable
    /// point does not validate — acknowledged state must never be lost
    /// silently. A torn tail (bad bytes at/after the durable point) is
    /// discarded and physically truncated instead.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        let mut storage = WalStorage {
            path,
            file,
            log: Vec::new(),
            compacted_idx: 0,
            promise: Ballot::bottom(),
            accepted_round: Ballot::bottom(),
            decided_idx: 0,
            snapshot: None,
            records_since_checkpoint: 0,
            checkpoint_every: 100_000,
            pending_appends: 0,
            wbuf: Vec::new(),
            file_len: 0,
            fault: None,
            poisoned: false,
            syncs: 0,
            entries_group_committed: 0,
            entries_since_sync: 0,
        };
        storage.replay(&bytes)?;
        Ok(storage)
    }

    /// Replay records. A record failing validation before the durable
    /// point is corruption of acked state ⇒ [`WalError::Corrupt`]; at or
    /// after it, a torn tail ⇒ discard and physically truncate.
    fn replay(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let durable = scan_durable_point(bytes);
        let mut at = 0usize;
        loop {
            if at + 9 > bytes.len() {
                break; // clean end or incomplete header (torn)
            }
            let tag = bytes[at];
            let len =
                u32::from_le_bytes(bytes[at + 1..at + 5].try_into().expect("4 bytes")) as usize;
            let (Some(payload), Some(crc_bytes)) = (
                bytes.get(at + 5..at + 5 + len),
                bytes.get(at + 5 + len..at + 9 + len),
            ) else {
                break; // torn tail
            };
            let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
            if crc != checksum(tag, payload) {
                break; // torn or corrupt: decided below by the durable point
            }
            // COMMIT markers are replay bookkeeping, not state records.
            if tag != TAG_COMMIT {
                if !self.apply_record(tag, payload) {
                    break;
                }
                self.records_since_checkpoint += 1;
            }
            at += 9 + len;
        }
        if (at as u64) < durable {
            // Durable (fsynced, possibly acknowledged) state failed to
            // replay: fail loudly instead of silently un-acking it.
            return Err(WalError::Corrupt { offset: at as u64 });
        }
        if at < bytes.len() {
            // Torn tail: physically drop it so future appends don't land
            // after garbage (which replay would then discard as torn).
            self.file.set_len(at as u64)?;
        }
        self.file_len = at as u64;
        Ok(())
    }

    /// Arm a deterministic failpoint: the next matching I/O operation
    /// fails (and poisons the WAL) exactly as the real fault would.
    pub fn arm_fault(&mut self, fault: WalFault) {
        self.fault = Some(fault);
    }

    /// Has an I/O failure poisoned this WAL? (Cleared by
    /// [`Storage::recover`].)
    /// Group-commit evidence: `(completed syncs, log entries whose
    /// durability they covered)`. One flush per outgoing drain means the
    /// second number divided by the first is the mean append run a
    /// single fsync made durable — the "one fsync covers hundreds of
    /// ops" property client acks ride on.
    pub fn group_commit_stats(&self) -> (u64, u64) {
        (self.syncs, self.entries_group_committed)
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_poison(&self, op: StorageOp) -> Result<(), StorageError> {
        if self.poisoned {
            Err(StorageError {
                op,
                kind: ErrorKind::Other,
            })
        } else {
            Ok(())
        }
    }

    fn apply_record(&mut self, tag: u8, payload: &[u8]) -> bool {
        match tag {
            TAG_APPEND => {
                let Some(count) = get_u64(payload, 0) else {
                    return false;
                };
                let mut at = 8usize;
                for _ in 0..count {
                    let Some(e) = get_log_entry::<T>(payload, &mut at) else {
                        return false;
                    };
                    self.log.push(e);
                }
                true
            }
            TAG_TRUNCATE => {
                let Some(from) = get_u64(payload, 0) else {
                    return false;
                };
                if from < self.compacted_idx {
                    return false;
                }
                self.log.truncate((from - self.compacted_idx) as usize);
                true
            }
            TAG_PROMISE => match get_ballot(payload, 0) {
                Some(b) => {
                    self.promise = b;
                    true
                }
                None => false,
            },
            TAG_ACCEPTED_ROUND => match get_ballot(payload, 0) {
                Some(b) => {
                    self.accepted_round = b;
                    true
                }
                None => false,
            },
            TAG_DECIDED => match get_u64(payload, 0) {
                Some(idx) => {
                    self.decided_idx = idx;
                    true
                }
                None => false,
            },
            TAG_TRIM => match get_u64(payload, 0) {
                Some(idx) => {
                    if idx < self.compacted_idx {
                        return false;
                    }
                    let rel = (idx - self.compacted_idx) as usize;
                    if rel > self.log.len() {
                        return false;
                    }
                    self.log.drain(..rel);
                    self.compacted_idx = idx;
                    true
                }
                None => false,
            },
            TAG_SNAPSHOT => {
                // Compaction by snapshot: trim semantics plus the record.
                let Some(idx) = get_u64(payload, 0) else {
                    return false;
                };
                if idx < self.compacted_idx {
                    return false;
                }
                let rel = (idx - self.compacted_idx) as usize;
                if rel > self.log.len() {
                    return false;
                }
                self.log.drain(..rel);
                self.compacted_idx = idx;
                self.snapshot = Some(SnapshotRef {
                    idx,
                    data: payload[8..].into(),
                });
                true
            }
            TAG_SNAPSHOT_INSTALL => {
                let Some(idx) = get_u64(payload, 0) else {
                    return false;
                };
                self.log.clear();
                self.compacted_idx = idx;
                self.decided_idx = idx;
                self.snapshot = Some(SnapshotRef {
                    idx,
                    data: payload[8..].into(),
                });
                true
            }
            TAG_CHECKPOINT => {
                // Full-state record: everything before it is superseded.
                let Some(compacted) = get_u64(payload, 0) else {
                    return false;
                };
                let Some(promise) = get_ballot(payload, 8) else {
                    return false;
                };
                let Some(acc) = get_ballot(payload, 32) else {
                    return false;
                };
                let Some(decided) = get_u64(payload, 56) else {
                    return false;
                };
                let Some(count) = get_u64(payload, 64) else {
                    return false;
                };
                let mut log = Vec::with_capacity(count as usize);
                let mut at = 72usize;
                for _ in 0..count {
                    let Some(e) = get_log_entry::<T>(payload, &mut at) else {
                        return false;
                    };
                    log.push(e);
                }
                // Embedded snapshot (recovery = snapshot + tail replay):
                // `[has: u8]` then, if 1, `[idx: u64][len: u64][bytes]`.
                let snapshot = match payload.get(at) {
                    Some(1) => {
                        let Some(idx) = get_u64(payload, at + 1) else {
                            return false;
                        };
                        let Some(len) = get_u64(payload, at + 9) else {
                            return false;
                        };
                        let Some(data) = payload.get(at + 17..at + 17 + len as usize) else {
                            return false;
                        };
                        Some(SnapshotRef {
                            idx,
                            data: data.into(),
                        })
                    }
                    Some(0) => None,
                    // A pre-snapshot checkpoint record ends at the log.
                    None => None,
                    _ => return false,
                };
                self.compacted_idx = compacted;
                self.promise = promise;
                self.accepted_round = acc;
                self.decided_idx = decided;
                self.log = log;
                self.snapshot = snapshot;
                true
            }
            _ => false,
        }
    }

    /// Frame the not-yet-recorded tail appends as one `APPEND` record.
    /// This is where consecutive appends coalesce (group commit).
    fn materialize_appends(&mut self) {
        if self.pending_appends == 0 {
            return;
        }
        let start = self.log.len() - self.pending_appends;
        let mut payload = Vec::new();
        payload.extend_from_slice(&(self.pending_appends as u64).to_le_bytes());
        for e in &self.log[start..] {
            put_log_entry(&mut payload, e);
        }
        self.pending_appends = 0;
        frame_into(&mut self.wbuf, TAG_APPEND, &payload);
        self.records_since_checkpoint += 1;
    }

    /// Buffer one non-append record, materializing pending appends first so
    /// that replay order matches mutation order.
    fn buffer_record(&mut self, tag: u8, payload: &[u8]) {
        self.materialize_appends();
        frame_into(&mut self.wbuf, tag, payload);
        self.records_since_checkpoint += 1;
    }

    /// Group commit: everything buffered since the previous flush hits the
    /// file in one `write` (and, if `sync`, one `sync_data` followed by a
    /// durable-point marker). Any failure poisons the WAL.
    fn flush_buffers(&mut self, sync: bool) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "wal poisoned by an earlier i/o failure; recover() first",
            ));
        }
        self.materialize_appends();
        if !self.wbuf.is_empty() {
            if let Err(e) = self.write_wbuf(sync) {
                self.poisoned = true;
                return Err(e);
            }
        }
        if self.checkpoint_every > 0 && self.records_since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// The fallible half of [`WalStorage::flush_buffers`]: one write, one
    /// optional fsync, one (unsynced) durable-point marker. Failpoints
    /// fire here so they model where real faults strike.
    fn write_wbuf(&mut self, sync: bool) -> std::io::Result<()> {
        match self.fault {
            Some(WalFault::NoSpace) => {
                self.fault = None;
                return Err(std::io::Error::new(
                    ErrorKind::OutOfMemory,
                    "injected: no space left on device",
                ));
            }
            Some(WalFault::ShortWrite) => {
                self.fault = None;
                // Half the buffer lands: a torn record for replay to find.
                let half = self.wbuf.len() / 2;
                self.file.write_all(&self.wbuf[..half])?;
                self.file_len += half as u64;
                return Err(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "injected: short write",
                ));
            }
            _ => {}
        }
        self.file.write_all(&self.wbuf)?;
        self.file_len += self.wbuf.len() as u64;
        self.wbuf.clear();
        if sync {
            if self.fault == Some(WalFault::SyncFail) {
                self.fault = None;
                return Err(std::io::Error::other("injected: fsync failed"));
            }
            self.file.sync_data()?;
            self.syncs += 1;
            self.entries_group_committed += self.entries_since_sync;
            self.entries_since_sync = 0;
            // [0, file_len) is now durable: assert it with a marker. The
            // marker itself stays unsynced — if it tears, replay merely
            // falls back to the previous durable point, which is exactly
            // a crash-before-marker and loses nothing acknowledged.
            let mut marker = Vec::with_capacity(MARKER_LEN);
            frame_into(&mut marker, TAG_COMMIT, &self.file_len.to_le_bytes());
            self.file.write_all(&marker)?;
            self.file_len += MARKER_LEN as u64;
        }
        Ok(())
    }

    /// Make all buffered records durable (the `fsync` point).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.flush_buffers(true)
    }

    /// Rewrite the file as a single checkpoint record of the live state
    /// (embedding the latest snapshot, so recovery is snapshot + tail
    /// replay).
    pub fn checkpoint(&mut self) -> std::io::Result<()> {
        // Drain the group-commit buffer into the checkpoint: frame pending
        // appends so the mirror and `wbuf` agree, build the full-state
        // payload from the mirror (which therefore includes every buffered
        // mutation), and only discard the buffered records once the rename
        // has actually made the checkpoint durable. A failed checkpoint
        // leaves the old generation intact on disk (temp-file + rename
        // discipline) but poisons the WAL: recover() reopens the old file.
        if self.poisoned {
            return Err(std::io::Error::other(
                "wal poisoned by an earlier i/o failure; recover() first",
            ));
        }
        self.materialize_appends();
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.compacted_idx.to_le_bytes());
        put_ballot(&mut payload, self.promise);
        put_ballot(&mut payload, self.accepted_round);
        payload.extend_from_slice(&self.decided_idx.to_le_bytes());
        payload.extend_from_slice(&(self.log.len() as u64).to_le_bytes());
        for e in &self.log {
            put_log_entry(&mut payload, e);
        }
        match &self.snapshot {
            Some(s) => {
                payload.push(1);
                payload.extend_from_slice(&s.idx.to_le_bytes());
                payload.extend_from_slice(&(s.data.len() as u64).to_le_bytes());
                payload.extend_from_slice(&s.data);
            }
            None => payload.push(0),
        }
        let mut frame = Vec::with_capacity(payload.len() + 9 + MARKER_LEN);
        frame.push(TAG_CHECKPOINT);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&checksum(TAG_CHECKPOINT, &payload).to_le_bytes());
        // The rename makes the whole temp file durable at once, so it can
        // carry its own durable-point marker covering the checkpoint.
        let ckpt_end = frame.len() as u64;
        frame_into(&mut frame, TAG_COMMIT, &ckpt_end.to_le_bytes());
        if let Err(e) = self.checkpoint_write(&frame) {
            self.poisoned = true;
            return Err(e);
        }
        // The checkpoint now supersedes everything buffered.
        self.wbuf.clear();
        self.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        self.file_len = frame.len() as u64;
        self.records_since_checkpoint = 0;
        Ok(())
    }

    /// Write `frame` to a sibling temp file, sync it, and atomically
    /// replace the WAL — with failpoints at the two spots real
    /// checkpoints die: mid-write (ENOSPC) and pre-rename (power loss).
    fn checkpoint_write(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        match self.fault {
            Some(WalFault::CheckpointNoSpace) => {
                self.fault = None;
                // Half a checkpoint lands in the temp file; the rename
                // never happens, so the old generation must survive.
                let mut f = File::create(&tmp)?;
                f.write_all(&frame[..frame.len() / 2])?;
                return Err(std::io::Error::new(
                    ErrorKind::OutOfMemory,
                    "injected: no space left on device (checkpoint)",
                ));
            }
            Some(WalFault::CheckpointCrashBeforeRename) => {
                self.fault = None;
                // The temp file is complete and synced, but the process
                // "dies" before the rename: the old generation is still
                // the WAL, and the stale temp file must be ignored.
                let mut f = File::create(&tmp)?;
                f.write_all(frame)?;
                f.sync_data()?;
                return Err(std::io::Error::new(
                    ErrorKind::Interrupted,
                    "injected: crash before checkpoint rename",
                ));
            }
            _ => {}
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(frame)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn rel(&self, abs: u64) -> usize {
        assert!(
            abs >= self.compacted_idx,
            "index {abs} reaches into compacted prefix (compacted to {})",
            self.compacted_idx
        );
        (abs - self.compacted_idx) as usize
    }
}

impl<T: WalEncode> Storage<T> for WalStorage<T> {
    fn append_entry(&mut self, entry: LogEntry<T>) -> Result<u64, StorageError> {
        self.check_poison(StorageOp::Append)?;
        self.log.push(entry);
        self.pending_appends += 1;
        self.entries_since_sync += 1;
        Ok(self.get_log_len())
    }

    fn append_entries(&mut self, entries: Vec<LogEntry<T>>) -> Result<u64, StorageError> {
        self.check_poison(StorageOp::Append)?;
        self.pending_appends += entries.len();
        self.entries_since_sync += entries.len() as u64;
        self.log.extend(entries);
        Ok(self.get_log_len())
    }

    fn append_on_prefix(
        &mut self,
        from_idx: u64,
        entries: Vec<LogEntry<T>>,
    ) -> Result<u64, StorageError> {
        self.check_poison(StorageOp::Append)?;
        // Frame pending appends while the tail they describe still exists.
        self.materialize_appends();
        let rel = self.rel(from_idx);
        self.log.truncate(rel);
        self.buffer_record(TAG_TRUNCATE, &from_idx.to_le_bytes());
        self.append_entries(entries)
    }

    fn set_promise(&mut self, b: Ballot) -> Result<(), StorageError> {
        self.check_poison(StorageOp::SetPromise)?;
        let mut payload = Vec::new();
        put_ballot(&mut payload, b);
        self.promise = b;
        self.buffer_record(TAG_PROMISE, &payload);
        Ok(())
    }

    fn get_promise(&self) -> Ballot {
        self.promise
    }

    fn set_accepted_round(&mut self, b: Ballot) -> Result<(), StorageError> {
        self.check_poison(StorageOp::SetAcceptedRound)?;
        let mut payload = Vec::new();
        put_ballot(&mut payload, b);
        self.accepted_round = b;
        self.buffer_record(TAG_ACCEPTED_ROUND, &payload);
        Ok(())
    }

    fn get_accepted_round(&self) -> Ballot {
        self.accepted_round
    }

    fn set_decided_idx(&mut self, idx: u64) -> Result<(), StorageError> {
        self.check_poison(StorageOp::SetDecidedIdx)?;
        self.decided_idx = idx;
        self.buffer_record(TAG_DECIDED, &idx.to_le_bytes());
        Ok(())
    }

    fn get_decided_idx(&self) -> u64 {
        self.decided_idx
    }

    fn entries_ref(&self, from: u64, to: u64) -> &[LogEntry<T>] {
        let to = to.min(self.get_log_len());
        if from >= to {
            return &[];
        }
        let (f, t) = (self.rel(from), self.rel(to));
        &self.log[f..t]
    }

    fn get_log_len(&self) -> u64 {
        self.compacted_idx + self.log.len() as u64
    }

    fn get_compacted_idx(&self) -> u64 {
        self.compacted_idx
    }

    fn trim(&mut self, idx: u64) -> Result<(), TrimError> {
        self.check_poison(StorageOp::Trim)?;
        if idx > self.decided_idx {
            return Err(TrimError::BeyondDecided {
                decided_idx: self.decided_idx,
                requested: idx,
            });
        }
        if idx < self.compacted_idx {
            return Err(TrimError::AlreadyTrimmed {
                compacted_idx: self.compacted_idx,
                requested: idx,
            });
        }
        // Frame pending appends before the drain can shift (or, when
        // trimming the whole log, remove) the tail they describe.
        self.materialize_appends();
        let rel = self.rel(idx);
        self.log.drain(..rel);
        self.compacted_idx = idx;
        self.buffer_record(TAG_TRIM, &idx.to_le_bytes());
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        // Never panic, never retry-and-ack: a failed flush poisons the
        // WAL and the replica halts (fail-stop) until recover().
        self.flush_buffers(true)
            .map_err(|e| StorageError::io(StorageOp::Flush, &e))
    }

    fn set_snapshot(&mut self, idx: u64, data: SnapshotData) -> Result<(), TrimError> {
        self.check_poison(StorageOp::Snapshot)?;
        if idx > self.decided_idx {
            return Err(TrimError::BeyondDecided {
                decided_idx: self.decided_idx,
                requested: idx,
            });
        }
        if idx < self.compacted_idx {
            return Err(TrimError::AlreadyTrimmed {
                compacted_idx: self.compacted_idx,
                requested: idx,
            });
        }
        // Frame pending appends before the drain shifts the tail.
        self.materialize_appends();
        let rel = self.rel(idx);
        self.log.drain(..rel);
        self.compacted_idx = idx;
        self.snapshot = Some(SnapshotRef {
            idx,
            data: data.clone(),
        });
        let mut payload = Vec::with_capacity(8 + data.len());
        payload.extend_from_slice(&idx.to_le_bytes());
        payload.extend_from_slice(&data);
        self.buffer_record(TAG_SNAPSHOT, &payload);
        Ok(())
    }

    fn install_snapshot(&mut self, idx: u64, data: SnapshotData) -> Result<(), StorageError> {
        self.check_poison(StorageOp::Snapshot)?;
        // The whole local log is superseded; drop any pending appends of it.
        self.pending_appends = 0;
        self.log.clear();
        self.compacted_idx = idx;
        self.decided_idx = idx;
        self.snapshot = Some(SnapshotRef {
            idx,
            data: data.clone(),
        });
        let mut payload = Vec::with_capacity(8 + data.len());
        payload.extend_from_slice(&idx.to_le_bytes());
        payload.extend_from_slice(&data);
        self.buffer_record(TAG_SNAPSHOT_INSTALL, &payload);
        Ok(())
    }

    fn get_snapshot(&self) -> Option<SnapshotRef> {
        self.snapshot.clone()
    }

    fn checkpoint(&mut self) -> Result<(), StorageError> {
        WalStorage::checkpoint(self).map_err(|e| StorageError::io(StorageOp::Checkpoint, &e))
    }

    fn recover(&mut self) -> Result<(), StorageError> {
        // The storage half of crash recovery: drop everything buffered
        // (it never became durable — as after a real crash) and reload
        // from the file. Corruption of durable state stays loud.
        self.wbuf.clear();
        self.pending_appends = 0;
        let mut fresh = WalStorage::open(&self.path).map_err(|e| match e {
            WalError::Io(e) => StorageError::io(StorageOp::Recover, &e),
            WalError::Corrupt { .. } => StorageError {
                op: StorageOp::Recover,
                kind: ErrorKind::InvalidData,
            },
        })?;
        fresh.checkpoint_every = self.checkpoint_every;
        // Dropping the old self here runs its Drop flush, which is inert:
        // the write buffer was cleared above (and poison blocks writes).
        *self = fresh;
        Ok(())
    }
}

impl<T: WalEncode> Drop for WalStorage<T> {
    fn drop(&mut self) {
        // Best-effort on clean shutdown: hand buffered records to the OS.
        // Durability guarantees only hold at explicit flush points.
        let _ = self.flush_buffers(false);
    }
}

impl<T: WalEncode> std::fmt::Debug for WalStorage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalStorage")
            .field("path", &self.path)
            .field("log_len", &self.get_log_len())
            .field("decided_idx", &self.decided_idx)
            .field("promise", &self.promise)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("omnipaxos-wal-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn norm(v: u64) -> LogEntry<u64> {
        LogEntry::Normal(v)
    }

    #[test]
    fn state_survives_reopen() {
        let path = tmp("reopen");
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.append_entries((1..=5).map(norm).collect()).unwrap();
            w.set_promise(Ballot::new(3, 0, 2)).unwrap();
            w.set_accepted_round(Ballot::new(3, 0, 2)).unwrap();
            w.set_decided_idx(4).unwrap();
            w.sync().unwrap();
        }
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(w.get_log_len(), 5);
        assert_eq!(w.get_decided_idx(), 4);
        assert_eq!(w.get_promise(), Ballot::new(3, 0, 2));
        assert_eq!(w.get_entries(0, 5), (1..=5).map(norm).collect::<Vec<_>>());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_covers_whole_append_run_with_one_sync() {
        let path = tmp("groupcommit");
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.append_entries((1..=500).map(norm).collect()).unwrap();
            for v in 501..=800 {
                w.append_entry(norm(v)).unwrap();
            }
            assert_eq!(w.group_commit_stats(), (0, 0), "nothing durable yet");
            w.sync().unwrap();
            // One fsync made the entire 800-entry run durable.
            assert_eq!(w.group_commit_stats(), (1, 800));
            w.append_entry(norm(801)).unwrap();
            w.sync().unwrap();
            assert_eq!(w.group_commit_stats(), (2, 801));
            // Syncing with nothing buffered must not spend an fsync.
            w.sync().unwrap();
            assert_eq!(w.group_commit_stats(), (2, 801));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_and_trim_survive_reopen() {
        let path = tmp("trunc");
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.append_entries((1..=10).map(norm).collect()).unwrap();
            w.append_on_prefix(6, vec![norm(60), norm(70)]).unwrap();
            w.set_decided_idx(7).unwrap();
            w.trim(3).unwrap();
        }
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(w.get_log_len(), 8);
        assert_eq!(w.get_compacted_idx(), 3);
        assert_eq!(
            w.get_entries(3, 8),
            vec![norm(4), norm(5), norm(6), norm(60), norm(70)]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stop_signs_round_trip() {
        let path = tmp("ss");
        let mut ss = StopSign::new(7, vec![2, 3, 9]);
        ss.metadata = vec![1, 2, 3];
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.append_entry(norm(1)).unwrap();
            w.append_entry(LogEntry::stopsign(ss.clone())).unwrap();
        }
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(w.get_entries(1, 2), vec![LogEntry::stopsign(ss)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_cleanly() {
        let path = tmp("torn");
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.append_entries((1..=5).map(norm).collect()).unwrap();
            w.set_decided_idx(5).unwrap();
        }
        // Simulate a crash mid-write: chop bytes off the end.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        // The decided record was torn; the appends survive.
        assert_eq!(w.get_log_len(), 5);
        assert_eq!(w.get_decided_idx(), 0, "torn record must not apply");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_group_commit_record_is_atomic() {
        let path = tmp("torn-group");
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.append_entries((1..=3).map(norm).collect()).unwrap();
            w.sync().unwrap();
            // These five appends coalesce into ONE framed record at the
            // group-commit point; tearing it must lose all five or none.
            w.append_entries((4..=8).map(norm).collect()).unwrap();
            w.sync().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        // Chop into the middle of the second (coalesced) record: past its
        // trailing durable-point marker (MARKER_LEN bytes) and 10 more.
        std::fs::write(&path, &bytes[..bytes.len() - MARKER_LEN - 10]).unwrap();
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(
            w.get_log_len(),
            3,
            "a torn group-commit record must be discarded whole"
        );
        assert_eq!(w.get_entries(0, 3), (1..=3).map(norm).collect::<Vec<_>>());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_unsynced_tail_record_truncates_silently() {
        let path = tmp("corrupt");
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            // Flush between appends so each lands in its own record;
            // group commit would otherwise coalesce them into one. The
            // second record is written by the Drop flush without a sync,
            // so it sits *after* the durable point.
            w.append_entry(norm(1)).unwrap();
            w.sync().unwrap();
            w.append_entry(norm(2)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the second (unsynced) record.
        let mid = bytes.len() - 6;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(w.get_log_len(), 1, "replay stops at the corrupt record");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_before_the_durable_point_is_loud() {
        let path = tmp("corrupt-durable");
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.append_entry(norm(1)).unwrap();
            w.sync().unwrap();
            w.append_entry(norm(2)).unwrap();
            w.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Flip a byte in the FIRST record: it lies before the durable
        // point asserted by the later markers, so this is acked-durable
        // state going bad — silent truncation would un-ack entry 1.
        for flip in 0..9 {
            let mut bytes = full.clone();
            bytes[flip] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            match WalStorage::<u64>::open(&path) {
                Err(WalError::Corrupt { offset }) => {
                    assert_eq!(offset, 0, "the corrupt record starts at 0")
                }
                other => panic!(
                    "flip at {flip}: expected WalError::Corrupt, got {:?}",
                    other.map(|w| w.get_log_len())
                ),
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_compacts_the_file_and_preserves_state() {
        let path = tmp("ckpt");
        let size_before;
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            for v in 0..200u64 {
                w.append_entry(norm(v)).unwrap();
                w.set_decided_idx(v + 1).unwrap();
            }
            w.trim(100).unwrap();
            // Push buffered records to the file before measuring its size.
            w.sync().unwrap();
            size_before = std::fs::metadata(&path).unwrap().len();
            w.checkpoint().unwrap();
        }
        let size_after = std::fs::metadata(&path).unwrap().len();
        assert!(
            size_after < size_before / 2,
            "checkpoint must shrink the file: {size_before} -> {size_after}"
        );
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(w.get_log_len(), 200);
        assert_eq!(w.get_compacted_idx(), 100);
        assert_eq!(w.get_decided_idx(), 200);
        assert_eq!(w.get_entries(100, 102), vec![norm(100), norm(101)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn automatic_checkpoint_triggers() {
        let path = tmp("auto");
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.checkpoint_every = 50;
            for v in 0..500u64 {
                w.append_entry(norm(v)).unwrap();
            }
        }
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(w.get_log_len(), 500);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn buffered_appends_survive_a_checkpoint_then_reopen() {
        // Regression: `checkpoint()` must drain the group-commit append
        // buffer into the checkpoint record. Appends here are buffered but
        // never explicitly flushed; the process "crashes" right after the
        // checkpoint (mem::forget skips the Drop flush), so the checkpoint
        // itself is the only thing that can have made them durable.
        let path = tmp("ckpt-drain");
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.append_entries((1..=20).map(norm).collect()).unwrap();
            w.set_decided_idx(20).unwrap();
            w.checkpoint().unwrap();
            std::mem::forget(w); // crash: no Drop, no flush
        }
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(w.get_log_len(), 20, "buffered appends lost by checkpoint");
        assert_eq!(w.get_decided_idx(), 20);
        assert_eq!(w.get_entries(0, 20), (1..=20).map(norm).collect::<Vec<_>>());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_record_survives_reopen() {
        let path = tmp("snap");
        let snap: SnapshotData = (0u8..100).collect::<Vec<u8>>().into();
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.append_entries((1..=10).map(norm).collect()).unwrap();
            w.set_decided_idx(10).unwrap();
            w.set_snapshot(6, snap.clone()).unwrap();
            w.sync().unwrap();
        }
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(w.get_compacted_idx(), 6);
        assert_eq!(w.get_log_len(), 10);
        let r = w.get_snapshot().expect("snapshot replayed");
        assert_eq!(r.idx, 6);
        assert_eq!(r.data, snap);
        assert_eq!(w.get_entries(6, 8), vec![norm(7), norm(8)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn installed_snapshot_survives_reopen() {
        let path = tmp("snap-install");
        let snap: SnapshotData = vec![7u8; 64].into();
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.append_entries((1..=5).map(norm).collect()).unwrap();
            w.install_snapshot(1000, snap.clone()).unwrap();
            w.append_entry(norm(42)).unwrap(); // the tail continues above it
            w.sync().unwrap();
        }
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(w.get_compacted_idx(), 1000);
        assert_eq!(w.get_decided_idx(), 1000);
        assert_eq!(w.get_log_len(), 1001);
        assert_eq!(w.get_snapshot().expect("installed").data, snap);
        assert_eq!(w.get_entries(1000, 1001), vec![norm(42)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_embeds_the_snapshot() {
        let path = tmp("snap-ckpt");
        let snap: SnapshotData = vec![3u8; 32].into();
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.append_entries((1..=10).map(norm).collect()).unwrap();
            w.set_decided_idx(10).unwrap();
            w.set_snapshot(8, snap.clone()).unwrap();
            w.checkpoint().unwrap();
            std::mem::forget(w); // only the checkpoint record exists
        }
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        let r = w.get_snapshot().expect("snapshot embedded in checkpoint");
        assert_eq!(r.idx, 8);
        assert_eq!(r.data, snap);
        assert_eq!(w.get_compacted_idx(), 8);
        assert_eq!(w.get_suffix(8), vec![norm(9), norm(10)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_snapshot_record_replays_to_pre_snapshot_state() {
        // Property: truncating the file anywhere inside the snapshot
        // record must replay to exactly the pre-snapshot state — never a
        // corrupt or partially-applied snapshot. We cut at every offset
        // within the record (its payload carries a recognizable pattern).
        let path = tmp("snap-torn");
        let snap: SnapshotData = (0u8..=255).collect::<Vec<u8>>().into();
        let pre_len;
        {
            let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            w.append_entries((1..=10).map(norm).collect()).unwrap();
            w.set_decided_idx(10).unwrap();
            w.sync().unwrap();
            pre_len = std::fs::metadata(&path).unwrap().len();
            w.set_snapshot(7, snap).unwrap();
            w.sync().unwrap();
            std::mem::forget(w);
        }
        let full = std::fs::read(&path).unwrap();
        assert!(full.len() > pre_len as usize, "snapshot record appended");
        // The file ends with the snapshot record followed by its
        // durable-point marker; cuts inside the record itself tear it.
        let snap_end = full.len() - MARKER_LEN;
        for cut in pre_len as usize..snap_end {
            std::fs::write(&path, &full[..cut]).unwrap();
            let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            assert_eq!(
                w.get_snapshot(),
                None,
                "torn snapshot (cut at {cut}) must not apply"
            );
            assert_eq!(w.get_compacted_idx(), 0, "torn snapshot must not trim");
            assert_eq!(w.get_log_len(), 10);
            assert_eq!(w.get_decided_idx(), 10);
            assert_eq!(w.get_entries(0, 10), (1..=10).map(norm).collect::<Vec<_>>());
        }
        // A cut inside (or right before) the trailing marker leaves the
        // record complete: it applies, and only the marker is torn away.
        for cut in snap_end..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
            assert_eq!(
                w.get_snapshot().expect("complete record applies").idx,
                7,
                "cut at {cut}"
            );
            assert_eq!(w.get_compacted_idx(), 7);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_fsync_poisons_until_recover() {
        let path = tmp("fsyncgate");
        let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        w.append_entry(norm(1)).unwrap();
        w.sync().unwrap();
        w.arm_fault(WalFault::SyncFail);
        w.append_entry(norm(2)).unwrap();
        let err = Storage::flush(&mut w).unwrap_err();
        assert_eq!(err.op, StorageOp::Flush);
        assert!(w.is_poisoned());
        // fsyncgate: no retry-and-ack. Every mutation now fails.
        assert!(w.append_entry(norm(3)).is_err());
        assert!(Storage::flush(&mut w).is_err());
        assert!(w.set_decided_idx(1).is_err());
        // recover() reloads from disk. Entry 2's bytes were written (only
        // the fsync failed) so replay may keep it — what matters is that
        // entry 1 (synced, ackable) survives and the WAL works again.
        w.recover().unwrap();
        assert!(!w.is_poisoned());
        assert!(w.get_log_len() >= 1);
        assert_eq!(w.get_entries(0, 1), vec![norm(1)]);
        w.append_entry(norm(9)).unwrap();
        Storage::flush(&mut w).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn short_write_leaves_a_recoverable_torn_tail() {
        let path = tmp("short-write");
        let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        w.append_entries((1..=4).map(norm).collect()).unwrap();
        w.sync().unwrap();
        w.arm_fault(WalFault::ShortWrite);
        w.append_entries((5..=8).map(norm).collect()).unwrap();
        assert!(Storage::flush(&mut w).is_err());
        assert!(w.is_poisoned());
        // Half a record landed on disk. Recovery must treat it as a torn
        // tail (it sits after the durable point) and truncate it.
        w.recover().unwrap();
        assert_eq!(w.get_log_len(), 4, "unsynced half-written batch is gone");
        assert_eq!(w.get_entries(0, 4), (1..=4).map(norm).collect::<Vec<_>>());
        // The truncation is physical: new appends replay cleanly.
        w.append_entry(norm(99)).unwrap();
        Storage::flush(&mut w).unwrap();
        drop(w);
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(w.get_suffix(4), vec![norm(99)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn enospc_mid_checkpoint_keeps_the_old_generation() {
        let path = tmp("ckpt-enospc");
        let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        w.append_entries((1..=10).map(norm).collect()).unwrap();
        w.set_decided_idx(10).unwrap();
        w.sync().unwrap();
        w.arm_fault(WalFault::CheckpointNoSpace);
        assert!(w.checkpoint().is_err());
        assert!(w.is_poisoned());
        // The temp file holds half a checkpoint; the WAL proper is
        // untouched. There is no window where neither file is valid.
        w.recover().unwrap();
        assert_eq!(w.get_log_len(), 10);
        assert_eq!(w.get_decided_idx(), 10);
        // And a later checkpoint overwrites the stale temp file.
        w.checkpoint().unwrap();
        drop(w);
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(w.get_log_len(), 10);
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_file(path.with_extension("wal.tmp"));
    }

    #[test]
    fn crash_before_checkpoint_rename_keeps_the_old_generation() {
        let path = tmp("ckpt-crash");
        let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        w.append_entries((1..=10).map(norm).collect()).unwrap();
        w.set_decided_idx(10).unwrap();
        w.sync().unwrap();
        w.arm_fault(WalFault::CheckpointCrashBeforeRename);
        assert!(w.checkpoint().is_err());
        std::mem::forget(w); // the process dies here
        let tmp_path = path.with_extension("wal.tmp");
        assert!(tmp_path.exists(), "complete temp file left behind");
        // Reopen: the old generation is the WAL; the stale (complete!)
        // temp file is ignored, not half-adopted.
        let w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        assert_eq!(w.get_log_len(), 10);
        assert_eq!(w.get_decided_idx(), 10);
        assert_eq!(w.get_entries(0, 10), (1..=10).map(norm).collect::<Vec<_>>());
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_file(tmp_path);
    }

    #[test]
    fn nospace_flush_fails_before_any_byte_lands() {
        let path = tmp("enospc-flush");
        let mut w: WalStorage<u64> = WalStorage::open(&path).unwrap();
        w.append_entry(norm(1)).unwrap();
        w.sync().unwrap();
        let len_before = std::fs::metadata(&path).unwrap().len();
        w.arm_fault(WalFault::NoSpace);
        w.append_entry(norm(2)).unwrap();
        let err = Storage::flush(&mut w).unwrap_err();
        assert_eq!(err.kind, ErrorKind::OutOfMemory);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            len_before,
            "ENOSPC write must not grow the file"
        );
        w.recover().unwrap();
        assert_eq!(w.get_log_len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn behaves_like_memory_storage() {
        use crate::storage::MemoryStorage;
        let path = tmp("model");
        let mut wal: WalStorage<u64> = WalStorage::open(&path).unwrap();
        let mut mem: MemoryStorage<u64> = MemoryStorage::new();
        for v in 0..50u64 {
            wal.append_entry(norm(v)).unwrap();
            mem.append_entry(norm(v)).unwrap();
        }
        wal.append_on_prefix(30, vec![norm(99)]).unwrap();
        mem.append_on_prefix(30, vec![norm(99)]).unwrap();
        wal.set_decided_idx(20).unwrap();
        mem.set_decided_idx(20).unwrap();
        wal.trim(10).unwrap();
        mem.trim(10).unwrap();
        assert_eq!(wal.get_log_len(), mem.get_log_len());
        assert_eq!(wal.get_entries(10, 31), mem.get_entries(10, 31));
        assert_eq!(wal.get_suffix(25), mem.get_suffix(25));
        std::fs::remove_file(&path).unwrap();
    }
}
