//! State-machine snapshots (§3's fail-recovery model, completed).
//!
//! The paper assumes that "state stored in non-volatile storage is
//! recoverable", but a log alone is only recoverable while it is *whole*:
//! once a decided prefix is trimmed, a peer that never saw it cannot be
//! caught up from the log. A **snapshot** closes that gap — it is an opaque
//! serialization of the application state machine after applying the log
//! prefix `[0, idx)`, and it *supersedes* that prefix everywhere:
//!
//! * in storage, where [`Storage::set_snapshot`](crate::storage::Storage)
//!   atomically records the snapshot and trims the prefix it covers;
//! * in the WAL, where `checkpoint()` embeds the latest snapshot so crash
//!   recovery is snapshot + tail replay instead of full-log replay;
//! * on the wire, where a leader whose log no longer reaches back far
//!   enough ships the snapshot in resumable, Arc-shared chunks
//!   (`SnapshotMeta` / `SnapshotChunk` / `SnapshotAck`) and only the tail
//!   above the snapshot index travels as ordinary log entries.
//!
//! The protocol core never interprets snapshot bytes; it moves them. The
//! [`Snapshottable`] trait is the contract the *application* state machine
//! implements so the service layer can produce and install them.

use std::sync::Arc;

/// Opaque snapshot bytes, reference-counted so one materialized snapshot
/// can back the WAL record, several concurrent chunked transfers and the
/// checkpoint payload without being copied (the same idiom as
/// [`EntryBatch`](crate::storage::EntryBatch) on the replication path).
pub type SnapshotData = Arc<[u8]>;

/// A snapshot together with the log index it covers: applying `data`
/// reproduces the state machine after the entries `[0, idx)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRef {
    /// First log index *not* covered by the snapshot (exclusive bound).
    pub idx: u64,
    /// The serialized state machine.
    pub data: SnapshotData,
}

/// A state machine that can be checkpointed and restored.
///
/// Implementations must be deterministic: two replicas that applied the
/// same command prefix must produce byte-identical snapshots only if they
/// want snapshot equality checks to hold, but they *must* produce
/// semantically identical state from `restore` — `restore(snapshot())`
/// followed by replaying the tail has to equal replaying the whole log.
pub trait Snapshottable {
    /// Serialize the complete state machine.
    fn snapshot(&self) -> SnapshotData;

    /// Replace the state machine's state with the one serialized in
    /// `data`. `data` always comes from a prior [`Snapshottable::snapshot`]
    /// (possibly taken on another replica).
    fn restore(&mut self, data: &[u8]);

    /// Incremental hook: serialize only the changes since the snapshot
    /// taken at `base_idx` (whose bytes are provided for implementations
    /// that diff against it). The default falls back to a full snapshot;
    /// implementations with cheap delta encodings (e.g. an LSM store
    /// shipping only fresh SSTs) override it. A delta is applied by
    /// [`Snapshottable::apply_delta`] on top of the base state.
    fn delta_snapshot(&self, _base_idx: u64, _base: &[u8]) -> SnapshotData {
        self.snapshot()
    }

    /// Apply a delta produced by [`Snapshottable::delta_snapshot`]. The
    /// default mirrors the default `delta_snapshot`: the "delta" is a full
    /// snapshot, so applying it is a restore.
    fn apply_delta(&mut self, delta: &[u8]) {
        self.restore(delta);
    }
}

/// Trivial [`Snapshottable`] over any `Clone + encode/decode`-able value —
/// used by the bench state machine and protocol-level tests where the
/// "application" is a single integer or small struct.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSm {
    /// Number of commands applied.
    pub applied: u64,
    /// Running sum of the applied commands (a checksum of history).
    pub sum: u64,
}

impl CounterSm {
    /// Apply one command.
    pub fn apply(&mut self, v: u64) {
        self.applied += 1;
        self.sum = self.sum.wrapping_add(v);
    }
}

impl Snapshottable for CounterSm {
    fn snapshot(&self) -> SnapshotData {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.applied.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.into()
    }

    fn restore(&mut self, data: &[u8]) {
        assert!(data.len() >= 16, "CounterSm snapshot is 16 bytes");
        self.applied = u64::from_le_bytes(data[0..8].try_into().expect("8 bytes"));
        self.sum = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let mut a = CounterSm::default();
        for v in 1..=100u64 {
            a.apply(v);
        }
        let snap = a.snapshot();
        let mut b = CounterSm::default();
        b.restore(&snap);
        assert_eq!(a, b);
        // Tail replay on top of the restored state matches full replay.
        let mut full = CounterSm::default();
        for v in 1..=150u64 {
            full.apply(v);
        }
        for v in 101..=150u64 {
            b.apply(v);
        }
        assert_eq!(full, b);
    }

    #[test]
    fn default_delta_is_full_snapshot() {
        let mut a = CounterSm::default();
        a.apply(7);
        let base = a.snapshot();
        a.apply(8);
        let delta = a.delta_snapshot(1, &base);
        let mut b = CounterSm::default();
        b.apply_delta(&delta);
        assert_eq!(a, b);
    }
}
