//! # multipaxos — the Multi-Paxos comparator for the Omni-Paxos reproduction
//!
//! A from-scratch Multi-Paxos in the style the paper compares against (a
//! Rust port of frankenpaxos' Multi-Paxos; see also *Paxos Made Moderately
//! Complex*): per-slot consensus with a leader that first establishes its
//! ballot through Phase 1 (a majority of `P1b` promises), then streams
//! `P2a` accepts.
//!
//! The two design traits that the Omni-Paxos paper's §2 analysis turns on
//! are modelled faithfully:
//!
//! * **Failure-detector-driven takeover**: every node monitors *node
//!   liveness* of the believed leader with heartbeats; a follower that
//!   suspects the leader increments its ballot and starts Phase 1 (Table 1:
//!   candidate requirement is QC only — there is no log requirement, which
//!   is why Multi-Paxos survives the constrained-election scenario).
//! * **Leader-vote gossiping via preemption**: acceptors reply `Nack` with
//!   their higher promise, deposing stale leaders through intermediaries —
//!   the mechanism that livelocks the chained scenario (§2c).
//!
//! In the quorum-loss scenario the system deadlocks exactly as the paper
//! describes: the only quorum-connected server keeps receiving heartbeats
//! from the stale leader, never suspects it, and never campaigns.

pub mod node;

pub use node::{MpConfig, MpMsg, MpNode, Payload};

/// Unique identifier of a server. `0` is reserved.
pub type NodeId = u64;

/// A Multi-Paxos ballot: `(n, pid)`, ordered lexicographically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bal {
    pub n: u64,
    pub pid: NodeId,
}

impl Bal {
    pub fn new(n: u64, pid: NodeId) -> Self {
        Bal { n, pid }
    }

    /// The bottom ballot (smaller than any real proposal).
    pub fn bottom() -> Self {
        Bal::default()
    }
}

/// A client command replicated by Multi-Paxos (mirrors `omnipaxos::Entry`).
pub trait Command: Clone + std::fmt::Debug {
    /// Approximate encoded size in bytes.
    fn size_bytes(&self) -> usize {
        8
    }
}

impl Command for u64 {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballots_order_by_n_then_pid() {
        assert!(Bal::new(1, 9) < Bal::new(2, 1));
        assert!(Bal::new(2, 1) < Bal::new(2, 2));
        assert!(Bal::bottom() < Bal::new(0, 1));
    }
}
