//! The Multi-Paxos replica: proposer, acceptor and learner collapsed into
//! one node, as deployed implementations do.
//!
//! Slots are decided independently (per-slot Paxos), but commands are only
//! *delivered* in contiguous slot order, as any RSM requires — which is why
//! the paper finds no throughput difference between deciding in parallel
//! and deciding a strictly growing log (§7.1, §9).

use crate::{Bal, Command, NodeId};
use std::collections::HashMap;

/// Fixed framing overhead per message (same size model as the other
/// protocol crates).
pub const HEADER_BYTES: usize = 32;

/// What occupies one slot.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload<C> {
    /// Gap filler proposed by a new leader for undecided holes.
    Noop,
    /// A client command.
    Cmd(C),
}

impl<C: Command> Payload<C> {
    fn size_bytes(&self) -> usize {
        match self {
            Payload::Noop => 0,
            Payload::Cmd(c) => c.size_bytes(),
        }
    }
}

/// The Multi-Paxos message alphabet. `P2a`/`P2b` are batched: FIFO links
/// make cumulative acknowledgement sound, mirroring the pipelining of the
/// other protocols so that the §7.1 comparison is apples-to-apples.
#[derive(Debug, Clone, PartialEq)]
pub enum MpMsg<C> {
    /// Phase 1: establish `ballot`; the receiver replies with everything it
    /// accepted at slots `>= from_slot`.
    P1a { ballot: Bal, from_slot: u64 },
    /// Phase 1 promise with the acceptor's accepted suffix.
    P1b {
        ballot: Bal,
        accepted: Vec<(u64, Bal, Payload<C>)>,
        contig: u64,
    },
    /// Phase 2: accept `entries` (slot, value) under `ballot`;
    /// `decided_upto` piggybacks the leader's decision watermark.
    P2a {
        ballot: Bal,
        entries: Vec<(u64, Payload<C>)>,
        decided_upto: u64,
    },
    /// Cumulative Phase 2 ack: all slots `< contig` are accepted.
    P2b { ballot: Bal, contig: u64 },
    /// Preemption: "I promised `promised`, your ballot is stale." This is
    /// the leader-vote gossip of Table 1.
    Nack { promised: Bal },
    /// Node-liveness heartbeat for the failure detector; also carries the
    /// sender's decision watermark so idle followers converge.
    Ping { ballot: Bal, decided_upto: u64 },
    /// Ask for decided values in `[from_slot, ..)` (gap repair after a
    /// partition).
    CatchupReq { from_slot: u64 },
    /// Decided values starting at `from_slot`.
    CatchupResp {
        from_slot: u64,
        entries: Vec<Payload<C>>,
        decided_upto: u64,
    },
}

impl<C: Command> MpMsg<C> {
    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        let payload = match self {
            MpMsg::P1b { accepted, .. } => {
                accepted.iter().map(|(_, _, p)| 16 + p.size_bytes()).sum()
            }
            MpMsg::P2a { entries, .. } => entries.iter().map(|(_, p)| 8 + p.size_bytes()).sum(),
            MpMsg::CatchupResp { entries, .. } => entries.iter().map(Payload::size_bytes).sum(),
            _ => 0,
        };
        HEADER_BYTES + payload
    }
}

/// Static configuration of a Multi-Paxos node.
#[derive(Debug, Clone)]
pub struct MpConfig {
    /// This server.
    pub pid: NodeId,
    /// All servers (including `pid`).
    pub nodes: Vec<NodeId>,
    /// Heartbeat period in ticks.
    pub ping_ticks: u64,
    /// Suspect the believed leader after this many ticks of silence.
    pub fd_timeout_ticks: u64,
}

impl MpConfig {
    /// Defaults comparable to the other protocols' timing.
    pub fn with(pid: NodeId, nodes: Vec<NodeId>) -> Self {
        assert!(nodes.contains(&pid));
        MpConfig {
            pid,
            nodes,
            ping_ticks: 5,
            fd_timeout_ticks: 20,
        }
    }
}

fn majority(n: usize) -> usize {
    n / 2 + 1
}

/// A Phase 1 promise: the acceptor's accepted suffix plus its contiguous
/// prefix length.
type PromiseState<C> = (Vec<(u64, Bal, Payload<C>)>, u64);

/// A Multi-Paxos replica. Drive with `tick`/`handle`/`outgoing_messages`.
pub struct MpNode<C: Command> {
    config: MpConfig,
    /// Acceptor: promised ballot.
    promised: Bal,
    /// Acceptor: per-slot accepted `(ballot, value)`; `None` is a hole.
    accepted: Vec<Option<(Bal, Payload<C>)>>,
    /// All slots `< contig` hold accepted values.
    contig: u64,
    /// Decision watermark: slots `< decided_upto` are chosen.
    decided_upto: u64,
    /// Delivery cursor for `poll_decided`.
    delivered: u64,
    // Proposer state.
    ballot: Bal,
    /// Phase 1 complete: we are the active leader.
    active: bool,
    /// Phase 1 in progress.
    phase1: bool,
    p1_promises: HashMap<NodeId, PromiseState<C>>,
    /// Cumulative Phase 2 acks per follower.
    p2_contig: HashMap<NodeId, u64>,
    /// Next slot the leader hands to a proposal.
    next_slot: u64,
    /// Entries appended since the last drain (batched into one P2a).
    unsent_from: u64,
    /// Highest ballot observed anywhere: whom we believe leads.
    max_seen: Bal,
    // Failure detector (node liveness).
    last_heard: HashMap<NodeId, u64>,
    now_ticks: u64,
    ping_elapsed: u64,
    /// Decision watermark last broadcast (to piggyback on pings).
    announced_upto: u64,
    outgoing: Vec<(NodeId, MpMsg<C>)>,
    /// Leader changes observed (metrics).
    leader_changes: u64,
}

impl<C: Command> MpNode<C> {
    pub fn new(config: MpConfig) -> Self {
        MpNode {
            promised: Bal::bottom(),
            accepted: Vec::new(),
            contig: 0,
            decided_upto: 0,
            delivered: 0,
            ballot: Bal::new(0, config.pid),
            active: false,
            phase1: false,
            p1_promises: HashMap::new(),
            p2_contig: HashMap::new(),
            next_slot: 0,
            unsent_from: 0,
            max_seen: Bal::bottom(),
            last_heard: HashMap::new(),
            now_ticks: 0,
            ping_elapsed: 0,
            announced_upto: 0,
            outgoing: Vec::new(),
            leader_changes: 0,
            config,
        }
    }

    pub fn pid(&self) -> NodeId {
        self.config.pid
    }

    /// Is this node the active (Phase-1-complete) leader?
    pub fn is_leader(&self) -> bool {
        self.active
    }

    /// The pid this node believes currently leads (0 = unknown).
    pub fn believed_leader(&self) -> NodeId {
        self.max_seen.pid
    }

    /// Slots chosen so far.
    pub fn decided_upto(&self) -> u64 {
        self.decided_upto
    }

    /// Leader changes observed by this node.
    pub fn leader_changes(&self) -> u64 {
        self.leader_changes
    }

    /// The *delivered* decided client commands, in slot order (noop fillers
    /// are skipped, and slots past the first hole are excluded, exactly
    /// like delivery). External invariant checkers compare this against the
    /// history accumulated from [`MpNode::poll_decided`] to detect a
    /// silently rewritten decided prefix.
    pub fn decided_log(&self) -> impl Iterator<Item = &C> {
        self.accepted[..self.delivered as usize]
            .iter()
            .filter_map(|slot| match slot {
                Some((_, Payload::Cmd(c))) => Some(c),
                _ => None,
            })
    }

    /// Our current proposer ballot; when [`MpNode::is_leader`] it is the
    /// ballot this leader's accepts carry (epoch for leader-uniqueness
    /// audits).
    pub fn current_ballot(&self) -> crate::Bal {
        self.ballot
    }

    /// Newly decided client commands, in slot order. Noops are skipped. A
    /// hole (undelivered slot) blocks delivery until repaired — commands
    /// must be executed in order.
    pub fn poll_decided(&mut self) -> Vec<C> {
        let mut out = Vec::new();
        while self.delivered < self.decided_upto {
            match self.accepted.get(self.delivered as usize) {
                Some(Some((_, Payload::Cmd(c)))) => out.push(c.clone()),
                Some(Some((_, Payload::Noop))) => {}
                _ => break, // hole: wait for catch-up
            }
            self.delivered += 1;
        }
        out
    }

    /// Propose a command; fails unless this node is the active leader.
    pub fn propose(&mut self, cmd: C) -> bool {
        if !self.active {
            return false;
        }
        // A stale claimant's slot counter can trail what this node has
        // since accepted or delivered (a recovered ex-leader that caught
        // up via CatchupResp before learning of its successor): chosen
        // slots are immutable, so proposals only ever append past the
        // local log — never overwrite below it.
        let floor = (self.accepted.len() as u64).max(self.decided_upto);
        self.next_slot = self.next_slot.max(floor);
        let slot = self.next_slot;
        self.next_slot += 1;
        self.set_accepted(slot, self.ballot, Payload::Cmd(cmd));
        true
    }

    fn set_accepted(&mut self, slot: u64, b: Bal, v: Payload<C>) {
        if self.accepted.len() as u64 <= slot {
            self.accepted.resize(slot as usize + 1, None);
        }
        self.accepted[slot as usize] = Some((b, v));
        while (self.contig as usize) < self.accepted.len()
            && self.accepted[self.contig as usize].is_some()
        {
            self.contig += 1;
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Advance logical time by one tick: heartbeats and failure detection.
    pub fn tick(&mut self) {
        self.now_ticks += 1;
        self.ping_elapsed += 1;
        if self.ping_elapsed >= self.config.ping_ticks {
            self.ping_elapsed = 0;
            let msg = MpMsg::Ping {
                ballot: if self.active {
                    self.ballot
                } else {
                    self.max_seen
                },
                decided_upto: self.decided_upto,
            };
            for &peer in &self.config.nodes.clone() {
                if peer != self.config.pid {
                    self.outgoing.push((peer, msg.clone()));
                }
            }
        }
        // Failure detection on the believed leader's *node* (§2a: this is
        // why the quorum-connected server never campaigns while the stale
        // leader is still reachable).
        if !self.active {
            let leader = self.max_seen.pid;
            let suspect = if leader == 0 || leader == self.config.pid {
                // No leader established (or we believe our own stalled
                // campaign): compete, or retry a stalled Phase 1 with a
                // fresh ballot, after a grace period. The retry matters
                // after a heal — peers follow the highest ballot they
                // hear, which may be ours, so nobody else will campaign.
                self.now_ticks > self.config.fd_timeout_ticks
            } else {
                let heard = self.last_heard.get(&leader).copied().unwrap_or(0);
                self.now_ticks.saturating_sub(heard) > self.config.fd_timeout_ticks
            };
            if suspect {
                self.takeover();
            }
        }
    }

    /// Increment the ballot above everything seen and start Phase 1.
    fn takeover(&mut self) {
        self.ballot = Bal::new(self.max_seen.n.max(self.ballot.n) + 1, self.config.pid);
        self.max_seen = self.ballot;
        self.phase1 = true;
        self.active = false;
        self.p1_promises.clear();
        // Self-promise.
        self.promised = self.promised.max(self.ballot);
        let from_slot = self.decided_upto;
        self.p1_promises.insert(
            self.config.pid,
            (self.accepted_suffix(from_slot), self.contig),
        );
        // Reset the FD so we don't immediately re-suspect mid-election.
        self.now_ticks = 0;
        self.last_heard.clear();
        if self.p1_promises.len() >= majority(self.config.nodes.len()) {
            self.complete_phase1();
            return;
        }
        for &peer in &self.config.nodes.clone() {
            if peer != self.config.pid {
                self.outgoing.push((
                    peer,
                    MpMsg::P1a {
                        ballot: self.ballot,
                        from_slot,
                    },
                ));
            }
        }
    }

    /// Longest prefix this node can cumulatively acknowledge under
    /// `ballot`: decided slots are immutable, but above the decision
    /// watermark only slots accepted at exactly `ballot` count. A prefix
    /// accepted under an older leader may diverge from the current
    /// leader's log, so acking it would let the leader declare slots
    /// chosen that a majority never accepted with its values.
    fn acked_contig(&self, ballot: Bal) -> u64 {
        let mut s = self.decided_upto;
        while let Some(Some((b, _))) = self.accepted.get(s as usize) {
            if *b != ballot {
                break;
            }
            s += 1;
        }
        s
    }

    fn accepted_suffix(&self, from_slot: u64) -> Vec<(u64, Bal, Payload<C>)> {
        self.accepted
            .iter()
            .enumerate()
            .skip(from_slot as usize)
            .filter_map(|(i, s)| s.as_ref().map(|(b, v)| (i as u64, *b, v.clone())))
            .collect()
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Drain outgoing messages, flushing unsent accepted entries first.
    pub fn outgoing_messages(&mut self) -> Vec<(NodeId, MpMsg<C>)> {
        self.flush_p2a();
        std::mem::take(&mut self.outgoing)
    }

    /// Feed one incoming message.
    pub fn handle(&mut self, from: NodeId, msg: MpMsg<C>) {
        self.last_heard.insert(from, self.now_ticks);
        match msg {
            MpMsg::P1a { ballot, from_slot } => self.handle_p1a(from, ballot, from_slot),
            MpMsg::P1b {
                ballot,
                accepted,
                contig,
            } => self.handle_p1b(from, ballot, accepted, contig),
            MpMsg::P2a {
                ballot,
                entries,
                decided_upto,
            } => self.handle_p2a(from, ballot, entries, decided_upto),
            MpMsg::P2b { ballot, contig } => self.handle_p2b(from, ballot, contig),
            MpMsg::Nack { promised } => self.handle_nack(promised),
            MpMsg::Ping {
                ballot,
                decided_upto,
            } => {
                self.observe(ballot);
                if decided_upto > self.decided_upto && ballot >= self.max_seen {
                    self.advance_decided(decided_upto, ballot, from);
                }
            }
            MpMsg::CatchupReq { from_slot } => self.handle_catchup_req(from, from_slot),
            MpMsg::CatchupResp {
                from_slot,
                entries,
                decided_upto,
            } => self.handle_catchup_resp(from_slot, entries, decided_upto),
        }
    }

    fn observe(&mut self, b: Bal) {
        if b > self.max_seen {
            if b.pid != self.max_seen.pid {
                self.leader_changes += 1;
            }
            self.max_seen = b;
        }
    }

    fn handle_p1a(&mut self, from: NodeId, ballot: Bal, from_slot: u64) {
        if ballot > self.promised {
            self.promised = ballot;
            self.observe(ballot);
            if self.active || self.phase1 {
                // Preempted mid-leadership.
                self.active = false;
                self.phase1 = false;
            }
            self.outgoing.push((
                from,
                MpMsg::P1b {
                    ballot,
                    accepted: self.accepted_suffix(from_slot),
                    contig: self.contig,
                },
            ));
        } else {
            self.outgoing.push((
                from,
                MpMsg::Nack {
                    promised: self.promised,
                },
            ));
        }
    }

    fn handle_p1b(
        &mut self,
        from: NodeId,
        ballot: Bal,
        accepted: Vec<(u64, Bal, Payload<C>)>,
        contig: u64,
    ) {
        if !self.phase1 || ballot != self.ballot {
            return;
        }
        self.p1_promises.insert(from, (accepted, contig));
        if self.p1_promises.len() >= majority(self.config.nodes.len()) {
            self.complete_phase1();
        }
    }

    /// Adopt, per slot, the value accepted at the highest ballot among the
    /// majority (Paxos P2c), fill holes with noops, and become active.
    fn complete_phase1(&mut self) {
        self.phase1 = false;
        self.active = true;
        let promises = std::mem::take(&mut self.p1_promises);
        let mut best: HashMap<u64, (Bal, Payload<C>)> = HashMap::new();
        let mut max_slot = self.decided_upto;
        for (_, (suffix, _)) in promises {
            for (slot, b, v) in suffix {
                max_slot = max_slot.max(slot + 1);
                match best.get(&slot) {
                    Some((cur, _)) if *cur >= b => {}
                    _ => {
                        best.insert(slot, (b, v));
                    }
                }
            }
        }
        // Re-propose adopted values (and noops for holes) under our ballot.
        for slot in self.decided_upto..max_slot {
            let v = best.remove(&slot).map(|(_, v)| v).unwrap_or(Payload::Noop);
            self.set_accepted(slot, self.ballot, v);
        }
        self.next_slot = max_slot;
        self.unsent_from = self.decided_upto;
        self.p2_contig.clear();
        // Followers will cumulative-ack from their own contig; we learn it
        // from their first P2b.
    }

    /// Stream accepted-but-unsent slots to all peers in one batch.
    fn flush_p2a(&mut self) {
        if !self.active || self.unsent_from >= self.next_slot {
            if self.active && self.decided_upto > self.announced_upto {
                // Nothing new to send but the watermark moved: announce it.
                self.announced_upto = self.decided_upto;
                let msg = MpMsg::P2a {
                    ballot: self.ballot,
                    entries: Vec::new(),
                    decided_upto: self.decided_upto,
                };
                for &peer in &self.config.nodes.clone() {
                    if peer != self.config.pid {
                        self.outgoing.push((peer, msg.clone()));
                    }
                }
            }
            return;
        }
        let entries: Vec<(u64, Payload<C>)> = (self.unsent_from..self.next_slot)
            .map(|s| {
                let (_, v) = self.accepted[s as usize]
                    .as_ref()
                    .expect("leader log has no holes");
                (s, v.clone())
            })
            .collect();
        self.unsent_from = self.next_slot;
        self.announced_upto = self.decided_upto;
        let msg = MpMsg::P2a {
            ballot: self.ballot,
            entries,
            decided_upto: self.decided_upto,
        };
        for &peer in &self.config.nodes.clone() {
            if peer != self.config.pid {
                self.outgoing.push((peer, msg.clone()));
            }
        }
    }

    fn handle_p2a(
        &mut self,
        from: NodeId,
        ballot: Bal,
        entries: Vec<(u64, Payload<C>)>,
        decided_upto: u64,
    ) {
        if ballot < self.promised {
            self.outgoing.push((
                from,
                MpMsg::Nack {
                    promised: self.promised,
                },
            ));
            return;
        }
        self.promised = ballot;
        self.observe(ballot);
        if (self.active || self.phase1) && ballot.pid != self.config.pid {
            self.active = false;
            self.phase1 = false;
        }
        // Detect a gap: entries that start above our ballot-verified prefix
        // mean we missed traffic (e.g. during a partition) — repair via
        // catch-up from the decision watermark, so stale slots accepted
        // under an older leader get overwritten too, not just holes.
        if let Some((first_slot, _)) = entries.first() {
            if *first_slot > self.acked_contig(ballot) {
                self.outgoing.push((
                    from,
                    MpMsg::CatchupReq {
                        from_slot: self.decided_upto,
                    },
                ));
            }
        }
        for (slot, v) in entries {
            // Slots below the decision watermark hold chosen values:
            // immutable. A stale claimant that paused before losing its
            // ballot can still stream never-chosen proposals at old slots
            // (its ballot equals what we promised long ago) — accepting
            // them would overwrite delivered history.
            if slot < self.decided_upto {
                continue;
            }
            self.set_accepted(slot, ballot, v);
        }
        self.advance_decided(decided_upto, ballot, from);
        self.outgoing.push((
            from,
            MpMsg::P2b {
                ballot,
                contig: self.acked_contig(ballot),
            },
        ));
    }

    fn advance_decided(&mut self, upto: u64, ballot: Bal, from: NodeId) {
        if upto > self.decided_upto {
            // Only slots verified under the announcing leader's ballot may
            // be delivered: a prefix accepted under an older leader can
            // hold values that were never chosen.
            let verified = self.acked_contig(ballot);
            self.decided_upto = upto.min(verified.max(self.decided_upto));
            if upto > self.decided_upto {
                // We are told more is decided than we hold verified: fetch
                // the chosen values (overwriting any stale ones).
                self.outgoing.push((
                    from,
                    MpMsg::CatchupReq {
                        from_slot: self.decided_upto,
                    },
                ));
            }
        }
    }

    fn handle_p2b(&mut self, from: NodeId, ballot: Bal, contig: u64) {
        if !self.active || ballot != self.ballot {
            return;
        }
        let e = self.p2_contig.entry(from).or_insert(0);
        *e = (*e).max(contig);
        let acked = *e;
        // A follower acking below our streamed window diverged or missed
        // traffic (partition, stale-leader prefix): the regular stream
        // only covers `unsent_from..`, so resync it from its ack point —
        // re-accepting under our ballot both repairs stale slots and lets
        // its cumulative ack advance.
        if acked < self.unsent_from {
            let entries: Vec<(u64, Payload<C>)> = (acked..self.unsent_from)
                .map(|s| {
                    let (_, v) = self.accepted[s as usize]
                        .as_ref()
                        .expect("leader log has no holes");
                    (s, v.clone())
                })
                .collect();
            self.outgoing.push((
                from,
                MpMsg::P2a {
                    ballot: self.ballot,
                    entries,
                    decided_upto: self.decided_upto,
                },
            ));
        }
        // Chosen = the majority-th largest cumulative ack (self counts with
        // its own ballot-verified prefix).
        let mut acks: Vec<u64> = self.p2_contig.values().copied().collect();
        acks.push(self.acked_contig(self.ballot));
        acks.sort_unstable_by(|a, b| b.cmp(a));
        let maj = majority(self.config.nodes.len());
        if acks.len() >= maj {
            let chosen = acks[maj - 1];
            if chosen > self.decided_upto {
                self.decided_upto = chosen;
            }
        }
    }

    fn handle_nack(&mut self, promised: Bal) {
        self.observe(promised);
        if promised > self.ballot && (self.active || self.phase1) {
            // Preempted: become passive and monitor the new leader's node.
            self.active = false;
            self.phase1 = false;
            self.now_ticks = 0; // reset FD grace for the new leader
        }
    }

    fn handle_catchup_req(&mut self, from: NodeId, from_slot: u64) {
        if from_slot >= self.decided_upto {
            return;
        }
        let entries: Vec<Payload<C>> = (from_slot..self.decided_upto)
            .filter_map(|s| {
                self.accepted
                    .get(s as usize)
                    .and_then(|o| o.as_ref())
                    .map(|(_, v)| v.clone())
            })
            .collect();
        if entries.len() as u64 == self.decided_upto - from_slot {
            self.outgoing.push((
                from,
                MpMsg::CatchupResp {
                    from_slot,
                    entries,
                    decided_upto: self.decided_upto,
                },
            ));
        }
    }

    fn handle_catchup_resp(&mut self, from_slot: u64, entries: Vec<Payload<C>>, decided_upto: u64) {
        let fetched_upto = from_slot + entries.len() as u64;
        for (i, v) in entries.into_iter().enumerate() {
            let slot = from_slot + i as u64;
            if slot < self.decided_upto {
                // Already delivered here: immutable (and identical, since
                // both copies are chosen values).
                continue;
            }
            // The responder only ships values below its decision watermark,
            // so they are chosen: adopt them even over a locally accepted
            // value — ours may be a stale leader's never-chosen proposal.
            self.set_accepted(slot, self.promised, v);
        }
        if decided_upto > self.decided_upto {
            // Everything fetched is chosen; beyond that our own prefix is
            // unverified, so don't outrun what the responder sent.
            self.decided_upto = decided_upto
                .min(self.contig)
                .min(fetched_upto.max(self.decided_upto));
        }
    }
}

impl<C: Command> std::fmt::Debug for MpNode<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpNode")
            .field("pid", &self.config.pid)
            .field("ballot", &self.ballot)
            .field("active", &self.active)
            .field("contig", &self.contig)
            .field("decided_upto", &self.decided_upto)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(nodes: &mut [MpNode<u64>], steps: usize) {
        for _ in 0..steps {
            for n in nodes.iter_mut() {
                n.tick();
            }
            let mut inbox = Vec::new();
            for n in nodes.iter_mut() {
                let from = n.pid();
                for (to, m) in n.outgoing_messages() {
                    inbox.push((from, to, m));
                }
            }
            for (from, to, m) in inbox {
                if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                    n.handle(from, m);
                }
            }
        }
    }

    fn cluster(n: usize) -> Vec<MpNode<u64>> {
        let nodes: Vec<NodeId> = (1..=n as NodeId).collect();
        nodes
            .iter()
            .map(|&p| MpNode::new(MpConfig::with(p, nodes.clone())))
            .collect()
    }

    #[test]
    fn one_active_leader_emerges() {
        let mut nodes = cluster(3);
        run(&mut nodes, 200);
        let active: Vec<NodeId> = nodes
            .iter()
            .filter(|n| n.is_leader())
            .map(|n| n.pid())
            .collect();
        assert_eq!(active.len(), 1, "exactly one active leader: {nodes:?}");
    }

    #[test]
    fn decides_in_slot_order() {
        let mut nodes = cluster(3);
        run(&mut nodes, 200);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        for v in 1..=10 {
            assert!(nodes[li].propose(v));
        }
        run(&mut nodes, 50);
        for n in nodes.iter_mut() {
            assert!(n.decided_upto() >= 10, "{n:?}");
            let d = n.poll_decided();
            assert_eq!(d, (1..=10).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn takeover_adopts_previously_accepted_values() {
        let mut nodes = cluster(3);
        run(&mut nodes, 200);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        for v in 1..=5 {
            nodes[li].propose(v);
        }
        run(&mut nodes, 50);
        // Force a different node to take over.
        let ti = (li + 1) % 3;
        nodes[ti].takeover();
        run(&mut nodes, 100);
        // All decided values survive the change, in order.
        let mut a = nodes[ti].poll_decided();
        // Drop noops implicitly; the commands must still be 1..=5 prefix.
        a.truncate(5);
        assert_eq!(a, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn noop_fills_holes_after_takeover() {
        let mut nodes = cluster(3);
        run(&mut nodes, 200);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        // Propose but cut delivery so nothing is decided (no run()).
        nodes[li].propose(42);
        // A new leader must still converge: takeover re-proposes.
        let ti = (li + 1) % 3;
        nodes[ti].takeover();
        run(&mut nodes, 100);
        let leader = nodes.iter().position(|n| n.is_leader()).unwrap();
        nodes[leader].propose(43);
        run(&mut nodes, 100);
        let decided: Vec<u64> = nodes[leader].poll_decided();
        assert!(decided.contains(&43));
    }

    #[test]
    fn nack_preempts_stale_leader() {
        let mut nodes = cluster(3);
        run(&mut nodes, 200);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        // Another node takes over with a higher ballot.
        let ti = (li + 1) % 3;
        nodes[ti].takeover();
        run(&mut nodes, 100);
        assert!(
            !nodes[li].is_leader(),
            "old leader must be preempted via Nack gossip"
        );
    }

    #[test]
    fn proposals_fail_on_non_leader() {
        let mut nodes = cluster(3);
        run(&mut nodes, 200);
        let fi = nodes.iter().position(|n| !n.is_leader()).unwrap();
        assert!(!nodes[fi].propose(9));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn cluster(n: usize) -> Vec<MpNode<u64>> {
        let nodes: Vec<NodeId> = (1..=n as NodeId).collect();
        nodes
            .iter()
            .map(|&p| MpNode::new(MpConfig::with(p, nodes.clone())))
            .collect()
    }

    fn run_filtered(nodes: &mut [MpNode<u64>], steps: usize, blocked: &[(NodeId, NodeId)]) {
        for _ in 0..steps {
            for n in nodes.iter_mut() {
                n.tick();
            }
            let mut inbox = Vec::new();
            for n in nodes.iter_mut() {
                let from = n.pid();
                for (to, m) in n.outgoing_messages() {
                    inbox.push((from, to, m));
                }
            }
            for (from, to, m) in inbox {
                if blocked.contains(&(from, to)) || blocked.contains(&(to, from)) {
                    continue;
                }
                if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                    n.handle(from, m);
                }
            }
        }
    }

    #[test]
    fn isolated_follower_catches_up_after_heal() {
        // Fully isolate one follower (partial cuts make it take over
        // through the third node — Multi-Paxos has no leader stickiness),
        // decide entries without it, heal: phase 1 adoption plus catch-up
        // must repair it in order, whoever ends up leading.
        let mut nodes = cluster(3);
        run_filtered(&mut nodes, 200, &[]);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        let leader_pid = nodes[li].pid();
        let victim = (1..=3).find(|&p| p != leader_pid).unwrap();
        let cut: Vec<(NodeId, NodeId)> = (1..=3)
            .filter(|&p| p != victim)
            .map(|p| (victim, p))
            .collect();
        for v in 1..=20 {
            assert!(nodes[li].propose(v), "leader must accept proposals");
        }
        run_filtered(&mut nodes, 100, &cut);
        let vi = nodes.iter().position(|n| n.pid() == victim).unwrap();
        assert_eq!(nodes[vi].decided_upto(), 0, "victim saw nothing");
        run_filtered(&mut nodes, 400, &[]); // healed
        for n in nodes.iter_mut() {
            assert!(n.decided_upto() >= 20, "{n:?} must recover all slots");
            let decided = n.poll_decided();
            assert_eq!(
                &decided[..20],
                &(1..=20).collect::<Vec<u64>>()[..],
                "chosen values survive takeovers, in order"
            );
        }
    }

    #[test]
    fn quorum_loss_shape_deadlocks_multipaxos() {
        // The §2a argument at the unit level: leader connected only to the
        // hub; everyone else only to the hub; nobody can make progress and
        // the hub never campaigns (it still hears the leader's pings).
        let mut nodes = cluster(5);
        run_filtered(&mut nodes, 300, &[]);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        let leader = nodes[li].pid();
        let hub = (1..=5).find(|&p| p != leader).unwrap();
        let mut blocked = Vec::new();
        for a in 1..=5u64 {
            for b in (a + 1)..=5u64 {
                if a != hub && b != hub {
                    blocked.push((a, b));
                }
            }
        }
        let before = nodes[li].decided_upto();
        for v in 1..=5 {
            nodes[li].propose(v + 100);
        }
        run_filtered(&mut nodes, 400, &blocked);
        let hub_i = nodes.iter().position(|n| n.pid() == hub).unwrap();
        assert!(
            !nodes[hub_i].is_leader(),
            "the hub must never campaign while the stale leader pings it"
        );
        assert_eq!(
            nodes[li].decided_upto(),
            before,
            "no progress during quorum loss"
        );
    }
}
