//! Integration tests asserting the paper's Table 1: which protocols make
//! stable progress under each partial-connectivity scenario.
//!
//! Each test runs the full simulation (warmup, partition injection, heal)
//! and asserts the qualitative outcome — ✓ (stable progress) or ✗
//! (unavailable) — exactly as the table states. Down-times are additionally
//! bounded in units of election timeouts where the paper claims constants.

use cluster::protocol::ProtocolKind;
use cluster::scenarios::{partition_run, PartitionOutcome, Scenario};
use simulator::{ms, sec};

const TIMEOUT: u64 = ms(50);
const PARTITION: u64 = sec(6);

fn run(protocol: ProtocolKind, scenario: Scenario) -> PartitionOutcome {
    partition_run(protocol, scenario, TIMEOUT, PARTITION, 7)
}

// ----------------------------------------------------------------------
// Quorum-loss scenario (Table 1 column 1, Fig. 8a)
// ----------------------------------------------------------------------

#[test]
fn quorum_loss_omni_paxos_recovers_in_constant_time() {
    let o = run(ProtocolKind::OmniPaxos, Scenario::QuorumLoss);
    assert!(o.recovered_during_partition, "{o:?}");
    // Paper: ~4 heartbeat rounds; allow a margin for round phase.
    assert!(
        o.downtime_us <= 6 * TIMEOUT,
        "downtime {}us exceeds 6 election timeouts",
        o.downtime_us
    );
}

#[test]
fn quorum_loss_raft_recovers() {
    let o = run(ProtocolKind::Raft, Scenario::QuorumLoss);
    assert!(o.recovered_during_partition, "{o:?}");
    // The paper reports repeated term increments by disconnected followers.
    assert!(o.final_rank > 1, "expected term inflation, got {o:?}");
}

#[test]
fn quorum_loss_raft_pv_cq_recovers() {
    let o = run(ProtocolKind::RaftPvCq, Scenario::QuorumLoss);
    assert!(o.recovered_during_partition, "{o:?}");
}

#[test]
fn quorum_loss_multipaxos_deadlocks() {
    let o = run(ProtocolKind::MultiPaxos, Scenario::QuorumLoss);
    // The QC server keeps receiving heartbeats from the stale leader and
    // never campaigns; nobody else can win (§7.2).
    assert!(!o.recovered_during_partition, "{o:?}");
    assert_eq!(o.decided_during, 0, "{o:?}");
}

#[test]
fn quorum_loss_vr_deadlocks() {
    let o = run(ProtocolKind::Vr, Scenario::QuorumLoss);
    // EQC cannot be satisfied with a single QC server.
    assert!(!o.recovered_during_partition, "{o:?}");
    assert_eq!(o.decided_during, 0, "{o:?}");
}

// ----------------------------------------------------------------------
// Constrained-election scenario (Table 1 column 2, Fig. 8b)
// ----------------------------------------------------------------------

#[test]
fn constrained_omni_paxos_elects_outdated_qc_server() {
    let o = run(ProtocolKind::OmniPaxos, Scenario::ConstrainedElection);
    assert!(o.recovered_during_partition, "{o:?}");
    // Paper: constant ~3 timeouts, shorter than quorum-loss.
    assert!(
        o.downtime_us <= 5 * TIMEOUT,
        "downtime {}us exceeds 5 election timeouts",
        o.downtime_us
    );
}

#[test]
fn constrained_multipaxos_recovers() {
    let o = run(ProtocolKind::MultiPaxos, Scenario::ConstrainedElection);
    assert!(o.recovered_during_partition, "{o:?}");
}

#[test]
fn constrained_raft_deadlocks_on_max_log_requirement() {
    let o = run(ProtocolKind::Raft, Scenario::ConstrainedElection);
    // The only QC server has an outdated log and is denied votes; the
    // up-to-date servers are not QC. Terms inflate with futile campaigns.
    assert!(!o.recovered_during_partition, "{o:?}");
    assert!(o.final_rank > 10, "expected futile campaigns, got {o:?}");
}

#[test]
fn constrained_raft_pv_cq_deadlocks() {
    let o = run(ProtocolKind::RaftPvCq, Scenario::ConstrainedElection);
    assert!(!o.recovered_during_partition, "{o:?}");
}

#[test]
fn constrained_vr_deadlocks() {
    let o = run(ProtocolKind::Vr, Scenario::ConstrainedElection);
    assert!(!o.recovered_during_partition, "{o:?}");
}

// ----------------------------------------------------------------------
// Chained scenario (Table 1 column 3, Fig. 8c)
// ----------------------------------------------------------------------

#[test]
fn chained_omni_paxos_single_leader_change_and_full_throughput() {
    let o = run(ProtocolKind::OmniPaxos, Scenario::Chained);
    assert!(o.recovered_during_partition, "{o:?}");
    // One leader change when the partition hits (§7.2 / Fig. 5c); the
    // initial election counts as the first change.
    assert!(o.leader_changes <= 2, "{o:?}");
}

#[test]
fn chained_raft_pv_cq_no_leader_changes() {
    let o = run(ProtocolKind::RaftPvCq, Scenario::Chained);
    assert!(o.recovered_during_partition, "{o:?}");
    // PreVote: A never votes for another server while its leader is alive
    // (§7.2) — no change beyond the initial election.
    assert!(o.leader_changes <= 1, "{o:?}");
}

#[test]
fn chained_raft_recovers_with_term_inflation() {
    let o = run(ProtocolKind::Raft, Scenario::Chained);
    assert!(o.recovered_during_partition, "{o:?}");
    assert!(o.final_rank >= 2, "{o:?}");
}

#[test]
fn chained_multipaxos_livelocks_with_reduced_throughput() {
    let mp = run(ProtocolKind::MultiPaxos, Scenario::Chained);
    let omni = run(ProtocolKind::OmniPaxos, Scenario::Chained);
    // Paper: up to 30 % fewer decided requests and many leader changes.
    assert!(
        (mp.decided_during as f64) < 0.95 * omni.decided_during as f64,
        "Multi-Paxos should decide measurably less: {} vs {}",
        mp.decided_during,
        omni.decided_during
    );
    assert!(
        mp.leader_changes >= 5,
        "expected the preemption livelock: {mp:?}"
    );
    // But unlike the deadlock scenarios it keeps making progress.
    assert!(mp.recovered_during_partition, "{mp:?}");
}

#[test]
fn chained_vr_recovers_after_round_robin_view_changes() {
    let o = run(ProtocolKind::Vr, Scenario::Chained);
    assert!(o.recovered_during_partition, "{o:?}");
}

// ----------------------------------------------------------------------
// Cross-scenario: Omni-Paxos is the only all-✓ row (Table 1)
// ----------------------------------------------------------------------

#[test]
fn omni_paxos_is_the_only_protocol_recovering_everywhere() {
    let mut all_green = Vec::new();
    for p in ProtocolKind::partition_lineup() {
        let ok = [
            Scenario::QuorumLoss,
            Scenario::ConstrainedElection,
            Scenario::Chained,
        ]
        .iter()
        .all(|&s| run(p, s).recovered_during_partition);
        if ok {
            all_green.push(p.name());
        }
    }
    assert_eq!(all_green, vec!["Omni-Paxos"]);
}

// ----------------------------------------------------------------------
// Five-server chain (§2c's general argument; the table's chained column)
// ----------------------------------------------------------------------

#[test]
fn chained_five_omni_paxos_stays_stable() {
    let o = run(ProtocolKind::OmniPaxos, Scenario::ChainedFive);
    assert!(o.recovered_during_partition, "{o:?}");
    assert!(o.leader_changes <= 2, "{o:?}");
}

#[test]
fn chained_five_raft_pv_cq_stays_stable() {
    let o = run(ProtocolKind::RaftPvCq, Scenario::ChainedFive);
    assert!(o.recovered_during_partition, "{o:?}");
    assert!(o.leader_changes <= 2, "{o:?}");
}

#[test]
fn chained_five_raft_livelocks() {
    let o = run(ProtocolKind::Raft, Scenario::ChainedFive);
    // The end servers never hear a leader and disrupt with rising terms.
    assert!(o.leader_changes >= 10, "{o:?}");
    let omni = run(ProtocolKind::OmniPaxos, Scenario::ChainedFive);
    assert!(
        (o.decided_during as f64) < 0.8 * omni.decided_during as f64,
        "raft {} vs omni {}",
        o.decided_during,
        omni.decided_during
    );
}

#[test]
fn chained_five_multipaxos_and_vr_livelock() {
    for p in [ProtocolKind::MultiPaxos, ProtocolKind::Vr] {
        let o = run(p, Scenario::ChainedFive);
        assert!(o.leader_changes >= 10, "{o:?}");
    }
}
