//! Determinism of the full harness: the zero-copy hot path (shared
//! batches, cached donor segments, WAL group commit) must not introduce
//! any schedule- or allocation-dependent behaviour — two runs with the
//! same seed must produce byte-identical observable results.

use cluster::client::ClientConfig;
use cluster::protocol::ProtocolKind;
use cluster::runner::{Action, RunConfig, Runner};
use cluster::RunReport;
use simulator::{ms, sec};

fn config(seed: u64) -> RunConfig {
    RunConfig {
        protocol: ProtocolKind::OmniPaxos,
        n: 5,
        client: ClientConfig {
            cp: 20,
            entry_size: 8,
            max_inject_per_tick: 20,
            retry_ticks: 100,
        },
        election_timeout_us: ms(20),
        duration: sec(6),
        window_us: sec(1),
        gap_threshold_us: ms(40),
        // A partial partition plus heal mid-run exercises elections,
        // resynchronization (AcceptSync) and retransmissions.
        schedule: vec![(sec(2), Action::QuorumLoss), (sec(4), Action::HealAll)],
        seed,
        ..Default::default()
    }
}

type Observables = (u64, u64, u64, Vec<(u64, u64)>, Vec<(u64, u64)>, u64);

fn observables(r: &RunReport) -> Observables {
    (
        r.total_decided,
        r.leader_changes,
        r.final_rank,
        r.bytes_sent.clone(),
        r.peak_window_bytes.clone(),
        r.decides.total(),
    )
}

#[test]
fn same_seed_reproduces_the_run_exactly() {
    let a = Runner::new(config(42)).run();
    let b = Runner::new(config(42)).run();
    assert_eq!(
        observables(&a),
        observables(&b),
        "fixed-seed runs must be identical"
    );
}

#[test]
fn different_seeds_still_decide_everything_submitted() {
    // Sanity companion: determinism is per seed, not degenerate identity
    // of the workload — different seeds may produce different schedules,
    // but each run is self-consistent and makes progress.
    let a = Runner::new(config(7)).run();
    assert!(a.total_decided > 0, "run must make progress");
}
