//! Fail-recovery experiments through the full harness (§3's failure model):
//! servers crash (volatile state lost, storage kept), stay down, and
//! recover — availability and safety must behave as the model promises.

use cluster::client::ClientConfig;
use cluster::protocol::ProtocolKind;
use cluster::runner::{Action, RunConfig, Runner};
use simulator::{ms, sec};

fn base_config(schedule: Vec<(u64, Action)>) -> RunConfig {
    RunConfig {
        protocol: ProtocolKind::OmniPaxos,
        n: 3,
        client: ClientConfig {
            cp: 50,
            entry_size: 8,
            max_inject_per_tick: 50,
            retry_ticks: 100,
        },
        election_timeout_us: ms(20),
        duration: sec(12),
        window_us: sec(1),
        gap_threshold_us: ms(40),
        schedule,
        seed: 5,
        ..Default::default()
    }
}

#[test]
fn follower_crash_does_not_interrupt_service() {
    // Crash a follower at 3 s, recover it at 6 s: a majority remains, so
    // the client harvest must show no down-time at all.
    let config = base_config(vec![
        (sec(3), Action::Crash(1)),
        (sec(6), Action::Recover(1)),
    ]);
    // Pid 3 wins the initial election (max ballot), so pid 1 is a follower.
    let report = Runner::new(config).run();
    assert_eq!(
        report.decides.downtime_in(sec(2), sec(11)),
        0,
        "a follower crash must be invisible to clients"
    );
    assert!(report.total_decided > 100_000);
}

#[test]
fn leader_crash_recovers_within_bounded_downtime() {
    let config = base_config(vec![
        (sec(3), Action::CrashLeader),
        (sec(7), Action::RecoverAll),
    ]);
    let report = Runner::new(config).run();
    let downtime = report.decides.downtime_in(sec(3), sec(11));
    assert!(downtime > 0, "a leader crash must be visible");
    assert!(
        downtime <= ms(200),
        "fail-over took {downtime}us, expected a few election timeouts"
    );
    // Service resumed long before (and independent of) the recovery.
    assert!(report.decides.decided_in(sec(4), sec(7)) > 0);
}

#[test]
fn repeated_rolling_crashes_never_lose_decided_entries() {
    // Roll a crash through every server, one at a time, with recovery in
    // between; total decided keeps growing and the run ends healthy.
    let schedule = vec![
        (sec(2), Action::Crash(1)),
        (sec(3), Action::Recover(1)),
        (sec(4), Action::Crash(2)),
        (sec(5), Action::Recover(2)),
        (sec(6), Action::Crash(3)),
        (sec(7), Action::Recover(3)),
        (sec(8), Action::CrashLeader),
        (sec(9), Action::RecoverAll),
    ];
    let report = Runner::new(base_config(schedule)).run();
    // Progress in the last second proves the cluster is healthy again.
    assert!(
        report.decides.decided_in(sec(11), sec(12)) > 10_000,
        "cluster must be at full speed after the rolling restarts: {:?}",
        report.decides.series().values()
    );
}

#[test]
fn crash_during_partition_still_recovers_after_heal() {
    // Combine the failure modes: partition the cluster, crash a server
    // inside the majority side, recover and heal.
    let schedule = vec![
        (sec(2), Action::CutLink(1, 2)),
        (sec(2), Action::CutLink(1, 3)),
        (sec(4), Action::Crash(2)),
        (sec(5), Action::Recover(2)),
        (sec(8), Action::HealAll),
    ];
    let report = Runner::new(base_config(schedule)).run();
    assert!(
        report.decides.decided_in(sec(10), sec(12)) > 10_000,
        "cluster must recover after heal: {:?}",
        report.decides.series().values()
    );
}
