//! The replicated command used by all experiments.
//!
//! The paper's client proposes no-op commands of 8 bytes (§7, *Hardware*);
//! the reconfiguration experiments effectively move 120 MB of log. [`Cmd`]
//! carries a unique id for completion tracking plus a declared wire size so
//! the same scaled byte volumes can be reproduced without materializing
//! gigabytes of payload.

/// A client command: an id plus its declared encoded size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cmd {
    /// Unique, client-assigned id.
    pub id: u64,
    /// Declared wire size in bytes (8 for the paper's no-op workload).
    pub size: u32,
}

impl Cmd {
    /// An 8-byte no-op command, as in the paper's workload.
    pub fn noop(id: u64) -> Self {
        Cmd { id, size: 8 }
    }

    /// A command with an explicit payload size.
    pub fn sized(id: u64, size: u32) -> Self {
        Cmd { id, size }
    }
}

impl omnipaxos::Entry for Cmd {
    fn size_bytes(&self) -> usize {
        self.size as usize
    }
}

impl raft::Command for Cmd {
    fn size_bytes(&self) -> usize {
        self.size as usize
    }
}

impl multipaxos::Command for Cmd {
    fn size_bytes(&self) -> usize {
        self.size as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_flows_through_all_protocol_traits() {
        let c = Cmd::sized(1, 80);
        assert_eq!(omnipaxos::Entry::size_bytes(&c), 80);
        assert_eq!(raft::Command::size_bytes(&c), 80);
        assert_eq!(multipaxos::Command::size_bytes(&c), 80);
        assert_eq!(omnipaxos::Entry::size_bytes(&Cmd::noop(2)), 8);
    }
}
