//! The uniform replica interface and one adapter per evaluated protocol.
//!
//! Experiments run against [`Replica`] so the same workload, partition
//! schedule and metrics apply identically to every protocol — the paper's
//! apples-to-apples setup (all protocols ran on the same Kompact/TCP
//! harness; here, on the same simulator).

use crate::cmd::Cmd;
use crate::NodeId;
use multipaxos::{MpConfig, MpMsg, MpNode};
use omnipaxos::service::{OmniPaxosServer, ServerConfig, ServiceMsg};
use omnipaxos::{FaultyStorage, MemoryStorage, MigrationScheme, StorageFaultKind};
use raft::{RaftConfig, RaftMsg, RaftNode};
use vr::{VrConfig, VrMsg, VrNode};

/// Which protocol an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    OmniPaxos,
    /// Omni-Paxos restricted to leader-only log migration (ablation of the
    /// §6.1 parallel-migration design choice).
    OmniPaxosLeaderMigration,
    Raft,
    /// Raft with PreVote + CheckQuorum (the paper's "Raft PV+CQ").
    RaftPvCq,
    MultiPaxos,
    Vr,
}

impl ProtocolKind {
    /// All protocols of the §7.2 partial-connectivity comparison.
    pub fn partition_lineup() -> Vec<ProtocolKind> {
        vec![
            ProtocolKind::OmniPaxos,
            ProtocolKind::Raft,
            ProtocolKind::RaftPvCq,
            ProtocolKind::MultiPaxos,
            ProtocolKind::Vr,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::OmniPaxos => "Omni-Paxos",
            ProtocolKind::OmniPaxosLeaderMigration => "Omni-Paxos (leader-only migration)",
            ProtocolKind::Raft => "Raft",
            ProtocolKind::RaftPvCq => "Raft PV+CQ",
            ProtocolKind::MultiPaxos => "Multi-Paxos",
            ProtocolKind::Vr => "VR",
        }
    }
}

/// A protocol message of whichever protocol the experiment runs.
#[derive(Debug, Clone)]
pub enum ProtoMsg {
    Omni(Box<ServiceMsg<Cmd>>),
    Raft(RaftMsg<Cmd>),
    Mp(MpMsg<Cmd>),
    Vr(Box<VrMsg<Cmd>>),
}

impl ProtoMsg {
    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            ProtoMsg::Omni(m) => m.size_bytes(),
            ProtoMsg::Raft(m) => m.size_bytes(),
            ProtoMsg::Mp(m) => m.size_bytes(),
            ProtoMsg::Vr(m) => m.size_bytes(),
        }
    }
}

impl net::MsgSize for ProtoMsg {
    fn size_bytes(&self) -> usize {
        ProtoMsg::size_bytes(self)
    }
}

/// The uniform replica interface the harness drives.
pub trait Replica {
    fn pid(&self) -> NodeId;
    /// Advance logical time by one tick.
    fn tick(&mut self);
    /// Feed one incoming message.
    fn handle(&mut self, from: NodeId, msg: ProtoMsg);
    /// Drain outgoing messages.
    fn outgoing(&mut self) -> Vec<(NodeId, ProtoMsg)>;
    /// Propose a command (only succeeds where the protocol accepts it).
    fn propose(&mut self, cmd: Cmd) -> bool;
    /// Ids of commands newly decided at this server.
    fn poll_decided(&mut self) -> Vec<u64>;
    /// Does this server believe it is the leader?
    fn is_leader(&self) -> bool;
    /// A monotone rank of this server's leadership claim (ballot number,
    /// term, or view) — clients prefer the freshest claimant.
    fn leader_rank(&self) -> u64;
    /// Number of leader changes observed by this server.
    fn leader_changes(&self) -> u64;
    /// Notification that the link to `pid` healed (session-drop protocol).
    fn reconnected(&mut self, _pid: NodeId) {}
    /// Rebuild volatile state from persistent storage after a crash
    /// (fail-recovery model, §3). Protocols without modelled persistence
    /// restart from scratch.
    fn fail_recovery(&mut self) {}
    /// Start a reconfiguration to `new_nodes`; `false` if unsupported here.
    fn reconfigure(&mut self, _new_nodes: Vec<NodeId>) -> bool {
        false
    }
    /// Has this server completed all requested reconfigurations?
    fn reconfig_done(&self) -> bool {
        true
    }
    /// Is this server operating in a configuration with exactly
    /// `new_nodes` as members?
    fn reconfigured_to(&self, _new_nodes: &[NodeId]) -> bool {
        false
    }

    // ---- Chaos-harness observation hooks ------------------------------

    /// Absolute log position of the next command `poll_decided` will
    /// deliver. Jumps forward past undelivered history when a snapshot is
    /// adopted wholesale (Omni-Paxos snapshot-first catch-up).
    fn decided_base(&self) -> u64;

    /// The decided command ids still retained in the log, together with
    /// the absolute position of the first retained entry (non-zero once
    /// compaction trimmed a prefix).
    fn decided_log_ids(&self) -> (u64, Vec<u64>);

    /// The epoch `(number, owner)` under which this server currently
    /// claims leadership, if it claims one. Raft/VR encode only the
    /// term/view with owner 0 — at most one leader may exist per epoch.
    /// Omni-Paxos and Multi-Paxos encode the full ballot including the
    /// owning pid, because two leaders with equal round numbers but
    /// different pids can legitimately coexist under partial
    /// connectivity; their uniqueness invariant lives in the ballot.
    fn leader_epoch(&self) -> Option<(u64, NodeId)>;

    /// Every ballot `(n, priority, pid)` this server elected since it
    /// last recovered, in election order — the BLE LE3 audit (elected
    /// ballots strictly increase). Empty for protocols without a BLE.
    fn audit_elections(&self) -> Vec<(u64, u64, u64)> {
        Vec::new()
    }

    // ---- Disk-fault injection ----------------------------------------

    /// Arm one storage fault: the next matching disk operation fails and
    /// the replica must fail-stop (never ack, go silent) until
    /// [`Replica::fail_recovery`]. Returns `false` where the protocol
    /// adapter has no fallible-storage model — the harness then degrades
    /// the fault to a plain crash, which is the same externally visible
    /// behaviour.
    fn inject_disk_fault(&mut self, _kind: StorageFaultKind) -> bool {
        false
    }

    /// Has this replica fail-stopped on a storage error?
    fn is_halted(&self) -> bool {
        false
    }
}

// ----------------------------------------------------------------------
// Omni-Paxos
// ----------------------------------------------------------------------

/// The storage the harness adapters run on: in-memory, wrapped with
/// armable failpoints so chaos schedules can attack the disk. Unarmed,
/// the wrapper forwards everything at zero cost, so throughput
/// experiments are unaffected.
pub type ChaosStorage = FaultyStorage<Cmd, MemoryStorage<Cmd>>;

/// Adapter around [`OmniPaxosServer`].
pub struct OmniReplica {
    server: OmniPaxosServer<Cmd, ChaosStorage>,
    leader_changes: u64,
    last_leader: Option<omnipaxos::Ballot>,
    reconfigs_requested: u32,
}

impl OmniReplica {
    /// A member of the initial configuration, optionally pre-loaded.
    pub fn new(
        pid: NodeId,
        nodes: Vec<NodeId>,
        scheme: MigrationScheme,
        hb_timeout_ticks: u64,
        initial_log: Vec<Cmd>,
    ) -> Self {
        let mut cfg = ServerConfig::with(pid);
        cfg.scheme = scheme;
        cfg.hb_timeout_ticks = hb_timeout_ticks;
        cfg.resend_ticks = (hb_timeout_ticks * 10).max(20);
        cfg.retry_ticks = (hb_timeout_ticks * 20).max(40);
        let mut server = if initial_log.is_empty() {
            OmniPaxosServer::new(cfg, nodes)
        } else {
            let storage = FaultyStorage::new(MemoryStorage::with_decided_log(initial_log));
            OmniPaxosServer::with_storage(cfg, nodes, storage)
        };
        // Absorb the pre-loaded history so it is not reported as new.
        server.tick();
        let _ = server.poll_applied();
        OmniReplica {
            server,
            leader_changes: 0,
            last_leader: None,
            reconfigs_requested: 0,
        }
    }

    /// A fresh joiner outside the initial configuration.
    pub fn joiner(pid: NodeId, scheme: MigrationScheme, hb_timeout_ticks: u64) -> Self {
        let mut cfg = ServerConfig::with(pid);
        cfg.scheme = scheme;
        cfg.hb_timeout_ticks = hb_timeout_ticks;
        cfg.resend_ticks = (hb_timeout_ticks * 10).max(20);
        cfg.retry_ticks = (hb_timeout_ticks * 20).max(40);
        OmniReplica {
            server: OmniPaxosServer::new_joiner(cfg),
            leader_changes: 0,
            last_leader: None,
            reconfigs_requested: 0,
        }
    }

    /// Access the wrapped server (tests, invariant checks).
    pub fn server(&mut self) -> &mut OmniPaxosServer<Cmd, ChaosStorage> {
        &mut self.server
    }

    /// Shared access to the wrapped server (invariant observation).
    pub fn server_ref(&self) -> &OmniPaxosServer<Cmd, ChaosStorage> {
        &self.server
    }
}

impl Replica for OmniReplica {
    fn pid(&self) -> NodeId {
        self.server.pid()
    }

    fn tick(&mut self) {
        self.server.tick();
        let leader = self.server.leader();
        if leader != self.last_leader && leader.is_some() {
            self.leader_changes += 1;
            self.last_leader = leader;
        }
    }

    fn handle(&mut self, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Omni(m) => self.server.handle(from, *m),
            other => panic!("Omni replica got {other:?}"),
        }
    }

    fn outgoing(&mut self) -> Vec<(NodeId, ProtoMsg)> {
        self.server
            .outgoing()
            .into_iter()
            .map(|(to, m)| (to, ProtoMsg::Omni(Box::new(m))))
            .collect()
    }

    fn propose(&mut self, cmd: Cmd) -> bool {
        self.server.is_leader() && self.server.propose(cmd).is_ok()
    }

    fn poll_decided(&mut self) -> Vec<u64> {
        self.server
            .poll_applied()
            .into_iter()
            .map(|c| c.id)
            .collect()
    }

    fn is_leader(&self) -> bool {
        self.server.is_leader()
    }

    fn leader_rank(&self) -> u64 {
        self.server.leader().map(|b| b.n).unwrap_or(0)
    }

    fn leader_changes(&self) -> u64 {
        self.leader_changes
    }

    fn reconnected(&mut self, pid: NodeId) {
        self.server.reconnected(pid);
    }

    fn fail_recovery(&mut self) {
        self.server.fail_recovery();
    }

    fn reconfigure(&mut self, new_nodes: Vec<NodeId>) -> bool {
        // The harness retries reconfiguration requests; reject duplicates
        // of the membership we already run (the library itself allows
        // same-membership changes for software upgrades, §6.1).
        if self.reconfigured_to(&new_nodes) {
            return false;
        }
        let ok = self.server.reconfigure(new_nodes).is_ok();
        if ok {
            self.reconfigs_requested += 1;
        }
        ok
    }

    fn reconfig_done(&self) -> bool {
        self.server.reconfigurations() >= self.reconfigs_requested
    }

    fn reconfigured_to(&self, new_nodes: &[NodeId]) -> bool {
        let mut mine: Vec<NodeId> = self.server.nodes().to_vec();
        let mut want: Vec<NodeId> = new_nodes.to_vec();
        mine.sort_unstable();
        want.sort_unstable();
        self.server.role() == omnipaxos::ServerRole::Active && mine == want
    }

    fn decided_base(&self) -> u64 {
        self.server.applied_cursor()
    }

    fn decided_log_ids(&self) -> (u64, Vec<u64>) {
        (
            self.server.log_start(),
            self.server.log().iter().map(|c| c.id).collect(),
        )
    }

    fn leader_epoch(&self) -> Option<(u64, NodeId)> {
        if !self.server.is_leader() {
            return None;
        }
        self.server.leader().map(|b| (b.n, b.pid))
    }

    fn audit_elections(&self) -> Vec<(u64, u64, u64)> {
        self.server
            .ballot_audit()
            .iter()
            .map(|b| (b.n, b.priority, b.pid))
            .collect()
    }

    fn inject_disk_fault(&mut self, kind: StorageFaultKind) -> bool {
        match self.server.omni() {
            Some(omni) => {
                omni.sequence_paxos().storage().arm(kind);
                true
            }
            // Mid-handover (no active configuration): nothing to arm.
            None => false,
        }
    }

    fn is_halted(&self) -> bool {
        self.server.is_halted()
    }
}

// ----------------------------------------------------------------------
// Raft (plain and PV+CQ)
// ----------------------------------------------------------------------

/// Adapter around [`RaftNode`].
pub struct RaftReplica {
    node: RaftNode<Cmd>,
    reconfigs_requested: u32,
    reconfigs_done: u32,
    was_reconfiguring: bool,
    /// Commands delivered via `poll_decided` so far (absolute cursor in
    /// command positions, noops/config entries excluded).
    delivered: u64,
}

impl RaftReplica {
    /// A member (or learner-to-be, if outside `voters`) of the cluster.
    pub fn new(
        pid: NodeId,
        voters: Vec<NodeId>,
        pv_cq: bool,
        election_ticks: u64,
        seed: u64,
        initial_log: Vec<Cmd>,
    ) -> Self {
        let mut cfg = if pv_cq {
            RaftConfig::with_pv_cq(pid, voters)
        } else {
            RaftConfig::with(pid, voters)
        };
        cfg.election_ticks = election_ticks;
        cfg.heartbeat_ticks = (election_ticks / 4).max(1);
        cfg.seed = seed ^ pid;
        let mut delivered = 0;
        let node = if initial_log.is_empty() {
            RaftNode::new(cfg)
        } else {
            let mut n = RaftNode::with_initial_log(cfg, initial_log);
            delivered = n.poll_decided().len() as u64;
            n
        };
        RaftReplica {
            node,
            reconfigs_requested: 0,
            reconfigs_done: 0,
            was_reconfiguring: false,
            delivered,
        }
    }

    /// Access the wrapped node.
    pub fn node(&mut self) -> &mut RaftNode<Cmd> {
        &mut self.node
    }
}

impl Replica for RaftReplica {
    fn pid(&self) -> NodeId {
        self.node.pid()
    }

    fn tick(&mut self) {
        self.node.tick();
        if self.was_reconfiguring && !self.node.reconfiguring() {
            self.reconfigs_done += 1;
        }
        self.was_reconfiguring = self.node.reconfiguring();
    }

    fn handle(&mut self, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Raft(m) => self.node.handle(from, m),
            other => panic!("Raft replica got {other:?}"),
        }
    }

    fn outgoing(&mut self) -> Vec<(NodeId, ProtoMsg)> {
        self.node
            .outgoing_messages()
            .into_iter()
            .map(|(to, m)| (to, ProtoMsg::Raft(m)))
            .collect()
    }

    fn propose(&mut self, cmd: Cmd) -> bool {
        self.node.propose(cmd)
    }

    fn poll_decided(&mut self) -> Vec<u64> {
        let ids: Vec<u64> = self.node.poll_decided().into_iter().map(|c| c.id).collect();
        self.delivered += ids.len() as u64;
        ids
    }

    fn is_leader(&self) -> bool {
        self.node.is_leader()
    }

    fn leader_rank(&self) -> u64 {
        self.node.term()
    }

    fn leader_changes(&self) -> u64 {
        self.node.leader_changes()
    }

    fn reconfigure(&mut self, new_nodes: Vec<NodeId>) -> bool {
        let ok = self.node.propose_membership(new_nodes);
        if ok {
            self.reconfigs_requested += 1;
            self.was_reconfiguring = true;
        }
        ok
    }

    fn reconfig_done(&self) -> bool {
        self.reconfigs_done >= self.reconfigs_requested
    }

    fn reconfigured_to(&self, new_nodes: &[NodeId]) -> bool {
        let mut mine: Vec<NodeId> = self.node.voters().to_vec();
        let mut want: Vec<NodeId> = new_nodes.to_vec();
        mine.sort_unstable();
        want.sort_unstable();
        mine == want && !self.node.reconfiguring()
    }

    fn decided_base(&self) -> u64 {
        self.delivered
    }

    fn decided_log_ids(&self) -> (u64, Vec<u64>) {
        (0, self.node.committed_log().map(|c| c.id).collect())
    }

    fn leader_epoch(&self) -> Option<(u64, NodeId)> {
        self.node.is_leader().then(|| (self.node.term(), 0))
    }
}

// ----------------------------------------------------------------------
// Multi-Paxos
// ----------------------------------------------------------------------

/// Adapter around [`MpNode`].
pub struct MpReplica {
    node: MpNode<Cmd>,
    delivered: u64,
}

impl MpReplica {
    pub fn new(pid: NodeId, nodes: Vec<NodeId>, fd_timeout_ticks: u64) -> Self {
        let mut cfg = MpConfig::with(pid, nodes);
        cfg.fd_timeout_ticks = fd_timeout_ticks;
        cfg.ping_ticks = (fd_timeout_ticks / 4).max(1);
        MpReplica {
            node: MpNode::new(cfg),
            delivered: 0,
        }
    }

    /// Access the wrapped node.
    pub fn node(&mut self) -> &mut MpNode<Cmd> {
        &mut self.node
    }
}

impl Replica for MpReplica {
    fn pid(&self) -> NodeId {
        self.node.pid()
    }

    fn tick(&mut self) {
        self.node.tick();
    }

    fn handle(&mut self, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Mp(m) => self.node.handle(from, m),
            other => panic!("Multi-Paxos replica got {other:?}"),
        }
    }

    fn outgoing(&mut self) -> Vec<(NodeId, ProtoMsg)> {
        self.node
            .outgoing_messages()
            .into_iter()
            .map(|(to, m)| (to, ProtoMsg::Mp(m)))
            .collect()
    }

    fn propose(&mut self, cmd: Cmd) -> bool {
        self.node.propose(cmd)
    }

    fn poll_decided(&mut self) -> Vec<u64> {
        let ids: Vec<u64> = self.node.poll_decided().into_iter().map(|c| c.id).collect();
        self.delivered += ids.len() as u64;
        ids
    }

    fn is_leader(&self) -> bool {
        self.node.is_leader()
    }

    fn leader_rank(&self) -> u64 {
        // The believed ballot's round number.
        self.node.leader_changes() // monotone enough for client preference
    }

    fn leader_changes(&self) -> u64 {
        self.node.leader_changes()
    }

    fn decided_base(&self) -> u64 {
        self.delivered
    }

    fn decided_log_ids(&self) -> (u64, Vec<u64>) {
        (0, self.node.decided_log().map(|c| c.id).collect())
    }

    fn leader_epoch(&self) -> Option<(u64, NodeId)> {
        if !self.node.is_leader() {
            return None;
        }
        let b = self.node.current_ballot();
        Some((b.n, b.pid))
    }
}

// ----------------------------------------------------------------------
// VR
// ----------------------------------------------------------------------

/// Adapter around [`VrNode`].
pub struct VrReplica {
    node: VrNode<Cmd>,
    delivered: u64,
}

impl VrReplica {
    pub fn new(pid: NodeId, nodes: Vec<NodeId>, timeout_ticks: u64) -> Self {
        let mut cfg = VrConfig::with(pid, nodes);
        cfg.timeout_ticks = timeout_ticks;
        cfg.ping_ticks = (timeout_ticks / 4).max(1);
        VrReplica {
            node: VrNode::new(cfg),
            delivered: 0,
        }
    }

    /// Access the wrapped node.
    pub fn node(&mut self) -> &mut VrNode<Cmd> {
        &mut self.node
    }
}

impl Replica for VrReplica {
    fn pid(&self) -> NodeId {
        self.node.pid()
    }

    fn tick(&mut self) {
        self.node.tick();
    }

    fn handle(&mut self, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Vr(m) => self.node.handle(from, *m),
            other => panic!("VR replica got {other:?}"),
        }
    }

    fn outgoing(&mut self) -> Vec<(NodeId, ProtoMsg)> {
        self.node
            .outgoing_messages()
            .into_iter()
            .map(|(to, m)| (to, ProtoMsg::Vr(Box::new(m))))
            .collect()
    }

    fn propose(&mut self, cmd: Cmd) -> bool {
        self.node.is_leader() && self.node.propose(cmd)
    }

    fn poll_decided(&mut self) -> Vec<u64> {
        let ids: Vec<u64> = self.node.poll_decided().into_iter().map(|c| c.id).collect();
        self.delivered += ids.len() as u64;
        ids
    }

    fn is_leader(&self) -> bool {
        self.node.is_leader()
    }

    fn leader_rank(&self) -> u64 {
        self.node.view()
    }

    fn leader_changes(&self) -> u64 {
        self.node.view_changes()
    }

    fn reconnected(&mut self, pid: NodeId) {
        self.node.reconnected(pid);
    }

    fn decided_base(&self) -> u64 {
        self.delivered
    }

    fn decided_log_ids(&self) -> (u64, Vec<u64>) {
        (
            0,
            self.node.decided_log().into_iter().map(|c| c.id).collect(),
        )
    }

    fn leader_epoch(&self) -> Option<(u64, NodeId)> {
        self.node.is_leader().then(|| (self.node.view(), 0))
    }
}
