//! # cluster — the evaluation harness of the Omni-Paxos reproduction
//!
//! Runs any of the compared protocols (Omni-Paxos, Raft, Raft PV+CQ,
//! Multi-Paxos, VR) inside the deterministic network simulator, under the
//! paper's workloads and partial-partition scenarios (§7):
//!
//! * [`protocol`] — a uniform [`protocol::Replica`] trait with one adapter
//!   per protocol, so experiments are protocol-agnostic.
//! * [`client`] — the closed-loop client with `CP` concurrent proposals
//!   (the paper's workload parameter), with retry on loss.
//! * [`runner`] — the simulation loop: ticks, deliveries, partition
//!   schedule, reconfiguration triggers, metrics.
//! * [`scenarios`] — the quorum-loss, constrained-election and chained
//!   partial partitions of §2, resolved against the live leader at
//!   injection time exactly as the testbed scripts did.
//! * [`metrics`] — down-time (longest gap in decided replies), windowed
//!   throughput, leader changes, and per-node IO.

pub mod client;
pub mod cmd;
pub mod metrics;
pub mod protocol;
pub mod runner;
pub mod scenarios;

pub use client::{Client, ClientConfig};
pub use cmd::Cmd;
pub use metrics::RunReport;
pub use protocol::{ProtocolKind, Replica};
pub use runner::{Action, RunConfig, Runner};

/// Server identifier (shared across all member crates).
pub type NodeId = u64;
