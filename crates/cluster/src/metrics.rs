//! Experiment metrics: the decide-reply timeline and the per-run report.

use crate::NodeId;
use simulator::{SimTime, WindowSeries};

/// The timeline of decided replies seen by the client: windowed counts for
/// throughput plots (Figs. 7, 8c, 9) and gaps for down-time (Figs. 8a/8b).
#[derive(Debug, Clone)]
pub struct DecideLog {
    series: WindowSeries,
    total: u64,
    last_at: Option<SimTime>,
    first_at: Option<SimTime>,
    /// Gaps between consecutive decided replies that exceeded the
    /// threshold: `(from, to)` pairs.
    gaps: Vec<(SimTime, SimTime)>,
    gap_threshold: SimTime,
}

impl DecideLog {
    /// Record into windows of `window` µs; keep gaps above `gap_threshold`.
    pub fn new(window: SimTime, gap_threshold: SimTime) -> Self {
        DecideLog {
            series: WindowSeries::new(window.max(1)),
            total: 0,
            last_at: None,
            first_at: None,
            gaps: Vec::new(),
            gap_threshold: gap_threshold.max(1),
        }
    }

    /// Record one decided reply at `now`.
    pub fn record(&mut self, now: SimTime) {
        if let Some(last) = self.last_at {
            if now.saturating_sub(last) >= self.gap_threshold {
                self.gaps.push((last, now));
            }
        } else {
            self.first_at = Some(now);
        }
        self.last_at = Some(now);
        self.total += 1;
        self.series.add(now, 1);
    }

    /// Close the timeline at simulation end so a trailing silent period
    /// counts as a gap.
    pub fn finalize(&mut self, end: SimTime) {
        if let Some(last) = self.last_at {
            if end.saturating_sub(last) >= self.gap_threshold {
                self.gaps.push((last, end));
            }
        }
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn series(&self) -> &WindowSeries {
        &self.series
    }

    pub fn gaps(&self) -> &[(SimTime, SimTime)] {
        &self.gaps
    }

    /// Total decided replies within `[from, to)` (whole windows).
    pub fn decided_in(&self, from: SimTime, to: SimTime) -> u64 {
        let w = self.series.window();
        self.series
            .values()
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let start = *i as u64 * w;
                start >= from && start < to
            })
            .map(|(_, v)| *v)
            .sum()
    }

    /// The longest interval without decided replies overlapping
    /// `[from, to)` — the paper's down-time metric (§7.2: "the duration for
    /// when the client received no decided replies").
    pub fn downtime_in(&self, from: SimTime, to: SimTime) -> SimTime {
        self.gaps
            .iter()
            .map(|&(a, b)| {
                let lo = a.max(from);
                let hi = b.min(to);
                hi.saturating_sub(lo)
            })
            .max()
            .unwrap_or(0)
    }
}

/// Everything one simulation run reports.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Display name of the protocol.
    pub protocol: String,
    /// Total commands completed by the client.
    pub total_decided: u64,
    /// The decide timeline.
    pub decides: DecideLog,
    /// Max leader changes observed by any server.
    pub leader_changes: u64,
    /// Max leadership rank (ballot n / term / view) reached — the paper
    /// reports term inflation under partitions (§7.2).
    pub final_rank: u64,
    /// Total bytes sent per server.
    pub bytes_sent: Vec<(NodeId, u64)>,
    /// Peak outgoing bytes per server over one IO window (§7.3).
    pub peak_window_bytes: Vec<(NodeId, u64)>,
    /// When the last requested reconfiguration completed cluster-wide.
    pub reconfig_done_at: Option<SimTime>,
    /// Propose-to-decide latency distribution (client-observed).
    pub latency: LatencyHistogram,
    /// Simulated run length.
    pub duration: SimTime,
}

impl RunReport {
    /// Mean decided replies per second over `[from, to)`.
    pub fn throughput_in(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        self.decides.decided_in(from, to) as f64 / ((to - from) as f64 / 1e6)
    }

    /// Peak leader IO in bytes per window.
    pub fn max_peak_io(&self) -> u64 {
        self.peak_window_bytes
            .iter()
            .map(|(_, b)| *b)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_capture_silent_periods() {
        let mut log = DecideLog::new(1_000_000, 500_000);
        log.record(100);
        log.record(200);
        log.record(900_000); // ~0.9 s silence
        log.record(950_000);
        log.finalize(5_000_000); // trailing silence
        assert_eq!(log.gaps().len(), 2);
        assert_eq!(log.downtime_in(0, 10_000_000), 5_000_000 - 950_000);
        assert_eq!(log.downtime_in(0, 900_000), 900_000 - 200);
    }

    #[test]
    fn decided_in_sums_whole_windows() {
        let mut log = DecideLog::new(1_000_000, u64::MAX);
        for t in [0, 100, 1_500_000, 2_100_000] {
            log.record(t);
        }
        assert_eq!(log.decided_in(0, 1_000_000), 2);
        assert_eq!(log.decided_in(1_000_000, 3_000_000), 2);
        assert_eq!(log.total(), 4);
    }

    #[test]
    fn downtime_clamps_to_query_interval() {
        let mut log = DecideLog::new(1_000_000, 100);
        log.record(0);
        log.record(10_000_000);
        assert_eq!(log.downtime_in(2_000_000, 5_000_000), 3_000_000);
    }

    #[test]
    fn no_events_means_no_gaps_but_finalize_is_safe() {
        let mut log = DecideLog::new(1_000_000, 100);
        log.finalize(1_000_000);
        assert!(log.gaps().is_empty());
        assert_eq!(log.downtime_in(0, 1_000_000), 0);
    }
}

/// A log-bucketed latency histogram (microseconds). Buckets grow by ~25 %
/// per step, giving <13 % quantile error over nanoseconds-to-minutes with a
/// few hundred buckets — plenty for simulation reporting.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u128,
    max_us: SimTime,
}

impl LatencyHistogram {
    const GROWTH: f64 = 1.25;

    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 128],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    fn index(us: SimTime) -> usize {
        if us <= 1 {
            return 0;
        }
        let idx = (us as f64).ln() / Self::GROWTH.ln();
        (idx as usize).min(127)
    }

    fn bucket_value(idx: usize) -> SimTime {
        Self::GROWTH.powi(idx as i32) as SimTime
    }

    /// Record one latency sample in microseconds.
    pub fn record(&mut self, us: SimTime) {
        self.buckets[Self::index(us)] += 1;
        self.count += 1;
        self.sum_us += us as u128;
        self.max_us = self.max_us.max(us);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Largest recorded latency.
    pub fn max_us(&self) -> SimTime {
        self.max_us
    }

    /// Approximate quantile (`q` in `[0, 1]`) in microseconds.
    pub fn quantile_us(&self, q: f64) -> SimTime {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i);
            }
        }
        self.max_us
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for us in [100u64, 200, 300, 400, 500, 10_000] {
            h.record(us);
        }
        let (p50, p99) = (h.quantile_us(0.5), h.quantile_us(0.99));
        assert!(p50 <= p99);
        assert!((100..=500).contains(&p50), "p50 = {p50}");
        assert!(h.max_us() == 10_000);
        assert!((h.mean_us() - 1_916.66).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_growth() {
        let mut h = LatencyHistogram::new();
        for us in 1..10_000u64 {
            h.record(us);
        }
        let p50 = h.quantile_us(0.5) as f64;
        assert!(
            (p50 / 5_000.0) > 0.75 && (p50 / 5_000.0) < 1.3,
            "p50 = {p50} should be ~5000 within bucket error"
        );
    }
}
