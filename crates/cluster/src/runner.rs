//! The simulation loop: replicas over the simulated network, with the
//! client workload, a partition/reconfiguration schedule, and metrics.
//!
//! Time advances in fixed ticks (default 1 ms). Each tick: due messages are
//! delivered, replicas and the client take a step, scheduled actions fire,
//! and outgoing messages are sent through the (possibly partitioned,
//! bandwidth-limited) network.
//!
//! Replicas talk to the network exclusively through the
//! [`net::NetworkLink`] abstraction — one [`net::SimLink`] per node on a
//! shared [`net::SimHub`]. Cut/heal surface as session events on the
//! links (the same events the TCP transport emits from real sockets), so
//! the reconnect → `PrepareReq` re-sync path is driven identically under
//! simulation and deployment.

use crate::client::{Client, ClientConfig};
use crate::metrics::RunReport;
use crate::protocol::{
    MpReplica, OmniReplica, ProtoMsg, ProtocolKind, RaftReplica, Replica, VrReplica,
};
use crate::{Cmd, NodeId};
use net::{LinkEvent, NetworkLink, SimHub, SimLink};
use omnipaxos::MigrationScheme;
use simulator::{ms, sec, NetworkConfig, SimTime};
use std::collections::HashSet;

/// A scheduled event. Partition shapes that depend on who currently leads
/// (all of §2's scenarios do) are resolved against the live leader when the
/// action fires, as the paper's testbed scripts did.
#[derive(Debug, Clone)]
pub enum Action {
    /// Cut both directions between two servers.
    CutLink(NodeId, NodeId),
    /// Heal both directions (runs the session-drop protocol).
    HealLink(NodeId, NodeId),
    /// Heal every link.
    HealAll,
    /// §2a: every server stays connected to one non-leader hub; all other
    /// links (including the leader's, except to the hub) are cut. The old
    /// leader stays alive and reachable from the hub.
    QuorumLoss,
    /// §2b stage 1: disconnect the designated hub from the leader so the
    /// hub's log goes stale.
    ConstrainedStage1,
    /// §2b stage 2: fully partition the old leader; everyone else connects
    /// only to the hub.
    ConstrainedStage2,
    /// §2c: in a 3-server chain, cut the leader from one follower, leaving
    /// the third server connected to both.
    Chained,
    /// §2c general case: connect the servers in a line (each only to its
    /// pid-neighbours). With 5 servers no fully-connected server exists,
    /// which is the configuration the paper argues livelocks Raft and VR
    /// permanently (Table 1's chained column).
    ChainedLine,
    /// Submit a reconfiguration to the current leader (retries until a
    /// leader accepts it).
    Reconfigure(Vec<NodeId>),
    /// Crash the current (effective) leader: its volatile state is lost,
    /// its in-flight messages vanish, and it stays down until recovered.
    CrashLeader,
    /// Crash a specific server.
    Crash(NodeId),
    /// Recover a crashed server from its (simulated) persistent storage.
    Recover(NodeId),
    /// Recover every crashed server.
    RecoverAll,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub protocol: ProtocolKind,
    /// Members of the initial configuration: pids `1..=n`.
    pub n: usize,
    /// Extra servers outside the initial configuration (pids `n+1..`),
    /// available as reconfiguration targets.
    pub joiners: usize,
    /// Client workload.
    pub client: ClientConfig,
    /// Simulation tick (timer granularity), µs.
    pub tick_us: SimTime,
    /// Election timeout (BLE heartbeat round / Raft election base / FD
    /// timeout), µs.
    pub election_timeout_us: SimTime,
    /// Default one-way link latency, µs (LAN: 100 ⇒ RTT 0.2 ms).
    pub latency_us: SimTime,
    /// Per-pair one-way latency overrides (for the WAN settings).
    pub latency_overrides: Vec<(NodeId, NodeId, SimTime)>,
    /// Outgoing NIC bandwidth per server (bytes/s); `None` = unconstrained.
    pub nic_bytes_per_sec: Option<u64>,
    /// Simulated run length, µs.
    pub duration: SimTime,
    /// Number of pre-loaded history entries (reconfiguration experiments).
    pub initial_log: usize,
    /// Declared size of each pre-loaded entry, bytes.
    pub initial_entry_size: u32,
    /// Throughput window length (5 s in the paper's Fig. 9), µs.
    pub window_us: SimTime,
    /// Gaps in decided replies at least this long count as down-time, µs.
    pub gap_threshold_us: SimTime,
    /// Scheduled actions (fired in time order at tick boundaries).
    pub schedule: Vec<(SimTime, Action)>,
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            protocol: ProtocolKind::OmniPaxos,
            n: 3,
            joiners: 0,
            client: ClientConfig::default(),
            tick_us: ms(1),
            election_timeout_us: ms(5),
            latency_us: 100,
            latency_overrides: Vec::new(),
            nic_bytes_per_sec: None,
            duration: sec(10),
            initial_log: 0,
            initial_entry_size: 8,
            window_us: sec(5),
            gap_threshold_us: ms(100),
            schedule: Vec::new(),
            seed: 1,
        }
    }
}

/// One simulation run in progress.
pub struct Runner {
    config: RunConfig,
    replicas: Vec<Box<dyn Replica>>,
    hub: SimHub<ProtoMsg>,
    links: Vec<SimLink<ProtoMsg>>,
    client: Client,
    /// Directed links we have cut (for reconnect notifications on heal).
    cut: HashSet<(NodeId, NodeId)>,
    schedule: Vec<(SimTime, Action)>,
    /// A reconfigure action waiting for a leader to accept it.
    pending_reconfig: Option<Vec<NodeId>>,
    reconfig_target: Option<Vec<NodeId>>,
    reconfig_done_at: Option<SimTime>,
    last_resubmit: SimTime,
    /// Remembered by `ConstrainedStage1` for stage 2.
    constrained: Option<(NodeId, NodeId)>, // (hub, old_leader)
    /// Servers currently crashed (fail-recovery model).
    crashed: HashSet<NodeId>,
    /// Servers shut down by the operator after leaving the configuration.
    /// A removed-but-uninformed Raft server otherwise disrupts the cluster
    /// with ever-higher terms (Raft §6's disruptive-server problem); real
    /// deployments (e.g. TiKV) destroy the removed peer at the application
    /// layer once the change is through.
    decommissioned: HashSet<NodeId>,
}

impl Runner {
    /// Build a run: replicas, network, client.
    pub fn new(config: RunConfig) -> Self {
        let n = config.n;
        let all: Vec<NodeId> = (1..=n as NodeId).collect();
        let total = n + config.joiners;
        let ticks_per_election = (config.election_timeout_us / config.tick_us).max(1);
        let initial_log: Vec<Cmd> = (0..config.initial_log as u64)
            .map(|i| Cmd::sized(i, config.initial_entry_size))
            .collect();
        let mut replicas: Vec<Box<dyn Replica>> = Vec::with_capacity(total);
        for pid in 1..=total as NodeId {
            let member = pid <= n as NodeId;
            let r: Box<dyn Replica> = match config.protocol {
                ProtocolKind::OmniPaxos | ProtocolKind::OmniPaxosLeaderMigration => {
                    let scheme = if config.protocol == ProtocolKind::OmniPaxos {
                        MigrationScheme::Parallel
                    } else {
                        MigrationScheme::LeaderOnly
                    };
                    if member {
                        Box::new(OmniReplica::new(
                            pid,
                            all.clone(),
                            scheme,
                            ticks_per_election,
                            initial_log.clone(),
                        ))
                    } else {
                        Box::new(OmniReplica::joiner(pid, scheme, ticks_per_election))
                    }
                }
                ProtocolKind::Raft | ProtocolKind::RaftPvCq => {
                    let pv_cq = config.protocol == ProtocolKind::RaftPvCq;
                    let log = if member {
                        initial_log.clone()
                    } else {
                        Vec::new()
                    };
                    Box::new(RaftReplica::new(
                        pid,
                        all.clone(),
                        pv_cq,
                        ticks_per_election,
                        config.seed,
                        log,
                    ))
                }
                ProtocolKind::MultiPaxos => {
                    assert!(config.joiners == 0, "Multi-Paxos: no reconfiguration");
                    Box::new(MpReplica::new(pid, all.clone(), ticks_per_election * 4))
                }
                ProtocolKind::Vr => {
                    assert!(config.joiners == 0, "VR baseline: no reconfiguration");
                    Box::new(VrReplica::new(pid, all.clone(), ticks_per_election * 4))
                }
            };
            replicas.push(r);
        }
        let hub = SimHub::new(NetworkConfig {
            nodes: (1..=total as NodeId).collect(),
            default_latency_us: config.latency_us,
            jitter_us: 0,
            nic_bytes_per_sec: config.nic_bytes_per_sec,
            priority_bytes: 256,
            seed: config.seed,
        });
        let links = (1..=total as NodeId).map(|p| hub.link(p)).collect();
        let client = Client::new(
            config.client.clone(),
            config.window_us,
            config.gap_threshold_us,
        );
        let mut schedule = config.schedule.clone();
        schedule.sort_by_key(|(t, _)| *t);
        schedule.reverse(); // pop() yields earliest
        let runner = Runner {
            replicas,
            hub,
            links,
            client,
            cut: HashSet::new(),
            schedule,
            pending_reconfig: None,
            reconfig_target: None,
            reconfig_done_at: None,
            last_resubmit: 0,
            constrained: None,
            crashed: HashSet::new(),
            decommissioned: HashSet::new(),
            config,
        };
        // Per-pair latency overrides (WAN settings).
        for (a, b, lat) in runner.config.latency_overrides.clone() {
            runner.hub.with_net(|n| {
                n.links_mut().set_config_sym(
                    a,
                    b,
                    simulator::LinkConfig {
                        latency_us: lat,
                        loss: 0.0,
                    },
                )
            });
        }
        if runner.config.window_us > 0 {
            // Per-node IO windows for the Fig. 9 peak-IO metric.
            // (Enabled on the stats side lazily; see simulator::NetStats.)
        }
        runner
    }

    /// Execute the run to completion and report.
    pub fn run(mut self) -> RunReport {
        // Enable IO windowing before any traffic.
        self.enable_io_windows();
        let total = self.replicas.len();
        let mut now: SimTime = 0;
        while now < self.config.duration {
            let next_tick = now + self.config.tick_us;
            // Deliver everything due in this tick: the hub stages due
            // deliveries (and session events) on each node's link; every
            // live node drains its link. Handling a message only touches
            // the receiving replica, so per-node draining preserves the
            // global delivery order's effect exactly.
            self.hub.drain_due(next_tick);
            for i in 0..total {
                let pid = (i + 1) as NodeId;
                let events = self.links[i].poll();
                if self.decommissioned.contains(&pid) || self.crashed.contains(&pid) {
                    continue; // a dead node's inbox drains to the floor
                }
                for ev in events {
                    match ev {
                        LinkEvent::Message { from, msg } => self.replicas[i].handle(from, msg),
                        // A fresh session means messages may have been
                        // lost: re-sync (PrepareReq on the Omni side).
                        LinkEvent::SessionEstablished { peer, .. } => {
                            self.replicas[i].reconnected(peer)
                        }
                        LinkEvent::SessionDropped { .. } => {}
                    }
                }
            }
            now = next_tick;
            // Scheduled actions.
            while self.schedule.last().is_some_and(|(t, _)| *t <= now) {
                let (_, action) = self.schedule.pop().expect("checked");
                self.apply_action(action);
            }
            // Retry a pending reconfiguration until a leader accepts it,
            // and periodically re-submit until the target configuration is
            // live: a leader change can strand an in-flight change (the
            // paper observed Raft needing multiple attempts, §7.3).
            if let Some(target) = self.pending_reconfig.clone() {
                if self.submit_reconfig(&target) {
                    self.pending_reconfig = None;
                    self.last_resubmit = now;
                }
            } else if self.reconfig_done_at.is_none() {
                if let Some(target) = self.reconfig_target.clone() {
                    if now.saturating_sub(self.last_resubmit) >= sec(2) {
                        self.last_resubmit = now;
                        let _ = self.submit_reconfig(&target);
                    }
                }
            }
            // Replica timers and the client step.
            for r in self.replicas.iter_mut() {
                if !self.decommissioned.contains(&r.pid()) && !self.crashed.contains(&r.pid()) {
                    r.tick();
                }
            }
            self.client.step(now, &mut self.replicas);
            // Send outgoing traffic.
            for i in 0..total {
                let from = (i + 1) as NodeId;
                if self.decommissioned.contains(&from) || self.crashed.contains(&from) {
                    let _ = self.replicas[i].outgoing();
                    continue;
                }
                for (to, msg) in self.replicas[i].outgoing() {
                    if to == 0 || to as usize > total {
                        continue;
                    }
                    self.links[i].send(to, msg);
                }
            }
            // Reconfiguration completion check.
            if self.reconfig_done_at.is_none() {
                if let Some(target) = self.reconfig_target.clone() {
                    if self.pending_reconfig.is_none()
                        && target
                            .iter()
                            .all(|&p| self.replicas[(p - 1) as usize].reconfigured_to(&target))
                    {
                        self.reconfig_done_at = Some(now);
                        // Operator shuts down the servers that left.
                        for p in 1..=self.config.n as NodeId {
                            if !target.contains(&p) {
                                self.decommissioned.insert(p);
                            }
                        }
                    }
                }
            }
        }
        self.finish(now)
    }

    fn enable_io_windows(&mut self) {
        // NetStats windowing is configured through the network's stats; the
        // Network exposes it via links()/stats() — add windows equal to the
        // report window.
        let w = self.config.window_us;
        self.hub.with_net(|n| n.stats_mut().enable_io_windows(w));
    }

    fn finish(mut self, end: SimTime) -> RunReport {
        self.client.decides.finalize(end);
        let leader_changes = self
            .replicas
            .iter()
            .map(|r| r.leader_changes())
            .max()
            .unwrap_or(0);
        let final_rank = self
            .replicas
            .iter()
            .map(|r| r.leader_rank())
            .max()
            .unwrap_or(0);
        let n = self.replicas.len() as NodeId;
        let (bytes_sent, peak_window_bytes) = self.hub.with_net(|net| {
            let bytes: Vec<(NodeId, u64)> =
                (1..=n).map(|p| (p, net.stats().bytes_sent(p))).collect();
            let peak: Vec<(NodeId, u64)> = (1..=n)
                .map(|p| (p, net.stats().peak_window_bytes(p)))
                .collect();
            (bytes, peak)
        });
        RunReport {
            protocol: self.config.protocol.name().to_string(),
            total_decided: self.client.completed(),
            decides: self.client.decides.clone(),
            leader_changes,
            final_rank,
            bytes_sent,
            peak_window_bytes,
            reconfig_done_at: self.reconfig_done_at,
            latency: self.client.latencies.clone(),
            duration: end,
        }
    }

    /// The pid of the freshest leader claimant (0 if none).
    fn effective_leader(&self) -> NodeId {
        self.replicas
            .iter()
            .filter(|r| r.is_leader())
            .max_by_key(|r| r.leader_rank())
            .map(|r| r.pid())
            .unwrap_or(0)
    }

    fn members(&self) -> Vec<NodeId> {
        (1..=self.config.n as NodeId).collect()
    }

    fn cut_link(&mut self, a: NodeId, b: NodeId) {
        self.hub.cut(a, b);
        self.cut.insert((a, b));
        self.cut.insert((b, a));
    }

    /// Healing establishes a new session; the `SessionEstablished` events
    /// the hub emits drive `reconnected()` on both ends at the next
    /// delivery phase — the same path the TCP transport takes.
    fn heal_link(&mut self, a: NodeId, b: NodeId) {
        self.hub.heal(a, b);
        self.cut.remove(&(a, b));
        self.cut.remove(&(b, a));
    }

    fn apply_action(&mut self, action: Action) {
        match action {
            Action::CutLink(a, b) => self.cut_link(a, b),
            Action::HealLink(a, b) => self.heal_link(a, b),
            Action::HealAll => {
                let pairs: Vec<(NodeId, NodeId)> = self.cut.iter().copied().collect();
                for (a, b) in pairs {
                    self.heal_link(a, b);
                }
            }
            Action::QuorumLoss => {
                let members = self.members();
                let leader = self.effective_leader();
                let hub = members
                    .iter()
                    .copied()
                    .find(|&p| p != leader)
                    .expect("a non-leader exists");
                for (a, b) in crate::scenarios::quorum_loss_cuts(&members, hub) {
                    self.cut_link(a, b);
                }
            }
            Action::ConstrainedStage1 => {
                let leader = self.effective_leader();
                let hub = self
                    .members()
                    .into_iter()
                    .find(|&p| p != leader)
                    .expect("a non-leader exists");
                self.constrained = Some((hub, leader));
                self.cut_link(hub, leader);
            }
            Action::ConstrainedStage2 => {
                let (hub, old_leader) = self.constrained.expect("ConstrainedStage1 must run first");
                let members = self.members();
                for (a, b) in crate::scenarios::constrained_stage2_cuts(&members, hub, old_leader) {
                    self.cut_link(a, b);
                }
            }
            Action::Chained => {
                let members = self.members();
                assert_eq!(members.len(), 3, "chained scenario runs on 3 servers");
                let leader = self.effective_leader();
                let others: Vec<NodeId> = members.into_iter().filter(|&p| p != leader).collect();
                // Cut leader <-> others[1]; others[0] is the middle server.
                self.cut_link(leader, others[1]);
            }
            Action::ChainedLine => {
                let members = self.members();
                for (a, b) in crate::scenarios::chained_line_cuts(&members) {
                    self.cut_link(a, b);
                }
            }
            Action::CrashLeader => {
                let leader = self.effective_leader();
                if leader != 0 {
                    self.apply_action(Action::Crash(leader));
                }
            }
            Action::Crash(pid) => {
                self.crashed.insert(pid);
                self.hub.crash(pid);
            }
            Action::Recover(pid) => {
                if self.crashed.remove(&pid) {
                    self.replicas[(pid - 1) as usize].fail_recovery();
                }
            }
            Action::RecoverAll => {
                let crashed: Vec<NodeId> = self.crashed.iter().copied().collect();
                for pid in crashed {
                    self.apply_action(Action::Recover(pid));
                }
            }
            Action::Reconfigure(new_nodes) => {
                self.reconfig_target = Some(new_nodes.clone());
                if !self.submit_reconfig(&new_nodes) {
                    self.pending_reconfig = Some(new_nodes);
                }
            }
        }
    }

    fn submit_reconfig(&mut self, new_nodes: &[NodeId]) -> bool {
        let leader = self.effective_leader();
        if leader == 0 {
            return false;
        }
        self.replicas[(leader - 1) as usize].reconfigure(new_nodes.to_vec())
    }
}
