//! The closed-loop client of the evaluation (§7, *Hardware*): it keeps `CP`
//! (*concurrent proposals*) commands outstanding, re-proposing any that were
//! lost to leader changes, and records the time of every decided reply —
//! the raw signal behind the paper's throughput and down-time plots.

use crate::metrics::{DecideLog, LatencyHistogram};
use crate::protocol::Replica;
use crate::Cmd;
use simulator::SimTime;
use std::collections::{HashMap, HashSet};

/// Client ids start here so they can never collide with pre-loaded history.
pub const CLIENT_ID_BASE: u64 = 1_000_000_000;

/// Client workload parameters.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Number of concurrent proposals kept outstanding (the paper's CP).
    pub cp: usize,
    /// Declared size of each proposed command in bytes (8 in the paper).
    pub entry_size: u32,
    /// Injection cap per tick; models the client/server proposal path
    /// capacity so simulated throughput saturates like real hardware.
    pub max_inject_per_tick: usize,
    /// Re-propose an outstanding command after this many ticks without a
    /// decided reply (covers entries lost to leader changes).
    pub retry_ticks: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            cp: 500,
            entry_size: 8,
            max_inject_per_tick: 500,
            retry_ticks: 200,
        }
    }
}

/// The closed-loop client.
pub struct Client {
    config: ClientConfig,
    next_id: u64,
    /// Outstanding proposals: id -> (tick, time) of the last attempt.
    outstanding: HashMap<u64, (u64, SimTime)>,
    /// Completion tracking: all ids below `frontier` are done, plus the
    /// out-of-order set above it.
    frontier: u64,
    done_above: HashSet<u64>,
    ticks: u64,
    /// Decide-reply timeline (throughput windows, gaps).
    pub decides: DecideLog,
    /// Propose-to-decide latency distribution.
    pub latencies: LatencyHistogram,
}

impl Client {
    /// Create a client recording decide events into windows of `window`
    /// simulated microseconds.
    pub fn new(config: ClientConfig, window: SimTime, gap_threshold: SimTime) -> Self {
        Client {
            config,
            next_id: CLIENT_ID_BASE,
            outstanding: HashMap::new(),
            frontier: CLIENT_ID_BASE,
            done_above: HashSet::new(),
            ticks: 0,
            decides: DecideLog::new(window, gap_threshold),
            latencies: LatencyHistogram::new(),
        }
    }

    /// Total commands completed.
    pub fn completed(&self) -> u64 {
        self.decides.total()
    }

    /// Currently outstanding proposals.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// One client step per simulation tick: collect decided replies, top up
    /// the window, retry losses.
    pub fn step(&mut self, now: SimTime, replicas: &mut [Box<dyn Replica>]) {
        self.ticks += 1;
        // 1. Collect decided replies from every server (the client counts a
        //    command once, at its first decided reply).
        for r in replicas.iter_mut() {
            for id in r.poll_decided() {
                if let Some(proposed_at) = self.complete(id) {
                    self.decides.record(now);
                    self.latencies.record(now.saturating_sub(proposed_at));
                }
            }
        }
        // 2. Find the freshest leader claimant to propose to.
        let leader = replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_leader())
            .max_by_key(|(_, r)| r.leader_rank())
            .map(|(i, _)| i);
        let Some(li) = leader else {
            return;
        };
        // 3. Top up to CP outstanding (bounded per tick).
        let mut budget = self.config.max_inject_per_tick;
        while self.outstanding.len() < self.config.cp && budget > 0 {
            let cmd = Cmd::sized(self.next_id, self.config.entry_size);
            if !replicas[li].propose(cmd) {
                break;
            }
            self.outstanding.insert(self.next_id, (self.ticks, now));
            self.next_id += 1;
            budget -= 1;
        }
        // 4. Periodically re-propose stragglers (entries lost to leader
        //    changes are the client's responsibility to retry).
        if self.ticks.is_multiple_of(self.config.retry_ticks) {
            let stale: Vec<u64> = self
                .outstanding
                .iter()
                .filter(|(_, &(t, _))| self.ticks - t >= self.config.retry_ticks)
                .map(|(&id, _)| id)
                .collect();
            for id in stale.into_iter().take(budget.max(64)) {
                let cmd = Cmd::sized(id, self.config.entry_size);
                if replicas[li].propose(cmd) {
                    self.outstanding.insert(id, (self.ticks, now));
                }
            }
        }
    }

    /// Mark `id` complete; returns the time of its last proposal attempt,
    /// or `None` for duplicates and foreign ids.
    fn complete(&mut self, id: u64) -> Option<SimTime> {
        if id < self.frontier || self.done_above.contains(&id) {
            return None; // duplicate or pre-loaded history
        }
        let proposed_at = self.outstanding.remove(&id).map(|(_, at)| at).unwrap_or(0);
        self.done_above.insert(id);
        while self.done_above.remove(&self.frontier) {
            self.frontier += 1;
        }
        Some(proposed_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_deduplicates_and_advances_frontier() {
        let mut c = Client::new(ClientConfig::default(), 1_000_000, 1_000_000);
        let b = CLIENT_ID_BASE;
        assert!(c.complete(b).is_some());
        assert!(c.complete(b).is_none(), "duplicate rejected");
        assert!(c.complete(b + 2).is_some());
        assert!(c.complete(b + 1).is_some());
        assert_eq!(c.frontier, b + 3);
        assert!(c.done_above.is_empty(), "frontier absorbed the set");
    }

    #[test]
    fn foreign_ids_are_ignored() {
        let mut c = Client::new(ClientConfig::default(), 1_000_000, 1_000_000);
        assert!(
            c.complete(5).is_none(),
            "pre-loaded history id must not count"
        );
        assert_eq!(c.completed(), 0);
    }
}
