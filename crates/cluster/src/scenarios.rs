//! Experiment entry points: one function per evaluation scenario of §7.
//!
//! Absolute scales are reduced from the paper's GCP testbed to laptop-sized
//! simulated runs (documented in `EXPERIMENTS.md`): election timeouts of
//! {10 ms, 50 ms, 500 ms} instead of {50 ms, 500 ms, 50 s}, partition
//! durations of {10 s, 20 s, 40 s} instead of {1, 2, 4} min, and a 120 MB
//! migration volume built from 750 k × 160 B entries instead of 15 M × 8 B.
//! The *shape* comparisons (who recovers, relative down-times in units of
//! election timeouts, relative degradation periods and peak IO) are scale-
//! free.

use crate::client::ClientConfig;
use crate::metrics::RunReport;
use crate::protocol::ProtocolKind;
use crate::runner::{Action, RunConfig, Runner};
use crate::NodeId;
use simulator::{ms, sec, SimTime};

/// Outcome of one §7.2 partial-connectivity run.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    pub protocol: String,
    /// Longest period without decided replies during the partition window.
    pub downtime_us: SimTime,
    /// Did the protocol make progress again *before* the partition healed?
    pub recovered_during_partition: bool,
    /// Decided replies during the partition window.
    pub decided_during: u64,
    /// Decided replies over the full run.
    pub total_decided: u64,
    /// Max leader changes observed by a server.
    pub leader_changes: u64,
    /// Max leadership rank (ballot/term/view) at the end — the term
    /// inflation the paper reports for Raft.
    pub final_rank: u64,
}

/// Outcome of one §7.3 reconfiguration run.
#[derive(Debug, Clone)]
pub struct ReconfigOutcome {
    pub protocol: String,
    /// Throughput per window over the whole run (decided replies).
    pub windows: Vec<u64>,
    /// Window length used.
    pub window_us: SimTime,
    /// When the reconfiguration was submitted.
    pub submitted_at: SimTime,
    /// When every member of the new configuration was active.
    pub completed_at: Option<SimTime>,
    /// Baseline throughput (mean decided/s before the reconfiguration).
    pub baseline_tput: f64,
    /// Worst relative throughput during the switch (0.1 = 90 % drop).
    pub worst_relative_tput: f64,
    /// How long throughput stayed below 90 % of baseline, µs.
    pub degraded_for_us: SimTime,
    /// Longest complete service outage, µs.
    pub downtime_us: SimTime,
    /// Peak outgoing bytes of any single server over one window.
    pub peak_io_bytes: u64,
    /// Total bytes sent by the busiest server.
    pub max_node_bytes: u64,
}

/// Default tick: 1 ms of simulated time.
pub const TICK_US: SimTime = ms(1);

// ----------------------------------------------------------------------
// §2 partial-partition patterns as pure cut-set computations
// ----------------------------------------------------------------------
//
// Each function maps a membership (and the pattern's distinguished servers,
// resolved against the live leader at injection time) to the symmetric link
// pairs to cut. The [`Runner`] and the chaos harness share these, so a
// randomized fault schedule exercises exactly the topologies of the paper's
// §2 analysis.

/// §2a quorum-loss: every server keeps only its link to the `hub`; all
/// other pairs are cut. No server is quorum-connected except the hub, so
/// only a quorum-connected-election protocol recovers (Fig. 1a).
pub fn quorum_loss_cuts(members: &[NodeId], hub: NodeId) -> Vec<(NodeId, NodeId)> {
    let mut cuts = Vec::new();
    for (i, &a) in members.iter().enumerate() {
        for &b in members.iter().skip(i + 1) {
            if a != hub && b != hub {
                cuts.push((a, b));
            }
        }
    }
    cuts
}

/// §2b constrained election, stage 2: the `old_leader` is fully
/// partitioned and everyone else keeps only their link to the (stale-log)
/// `hub` (Fig. 1b). Stage 1 is the single cut `(hub, old_leader)`.
pub fn constrained_stage2_cuts(
    members: &[NodeId],
    hub: NodeId,
    old_leader: NodeId,
) -> Vec<(NodeId, NodeId)> {
    let mut cuts = Vec::new();
    for (i, &a) in members.iter().enumerate() {
        for &b in members.iter().skip(i + 1) {
            let keeps = (a == hub || b == hub) && a != old_leader && b != old_leader;
            if !keeps {
                cuts.push((a, b));
            }
        }
    }
    cuts
}

/// §2c chained: connect the servers in a line (each only to its
/// pid-neighbours) by cutting every non-adjacent pair. With ≥4 servers no
/// fully-connected server exists — the configuration Table 1 argues
/// livelocks Raft and VR permanently.
pub fn chained_line_cuts(members: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let mut cuts = Vec::new();
    for (i, &a) in members.iter().enumerate() {
        for &b in members.iter().skip(i + 2) {
            cuts.push((a, b));
        }
    }
    cuts
}

// ----------------------------------------------------------------------
// §7.1 — regular execution (Fig. 7)
// ----------------------------------------------------------------------

/// Geographic region of a server in the WAN setting of §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    Asia,
    Eu,
    Us,
}

/// Latency overrides matching the WAN settings of §7.1: the last server is
/// "us-central1" (with the client), earlier servers split between
/// "asia-northeast1" (one-way 72.5 ms to us-central) and "eu-west1"
/// (52.5 ms). Same-region links stay at LAN latency.
pub fn wan_latency_overrides(n: usize) -> Vec<(NodeId, NodeId, SimTime)> {
    let region = |pid: NodeId| -> Region {
        if pid as usize == n {
            Region::Us
        } else if (pid as usize) <= (n - 1) / 2 {
            Region::Asia
        } else {
            Region::Eu
        }
    };
    let one_way = |a: Region, b: Region| -> SimTime {
        use Region::*;
        match (a, b) {
            (Asia, Asia) | (Eu, Eu) | (Us, Us) => 100, // same region: LAN
            (Asia, Us) | (Us, Asia) => 72_500,
            (Eu, Us) | (Us, Eu) => 52_500,
            (Asia, Eu) | (Eu, Asia) => 112_500,
        }
    };
    let mut overrides = Vec::new();
    for a in 1..=n as NodeId {
        for b in (a + 1)..=n as NodeId {
            overrides.push((a, b, one_way(region(a), region(b))));
        }
    }
    overrides
}

/// One Fig. 7 run: `n` servers, CP concurrent proposals, LAN or WAN.
pub fn normal_run(
    protocol: ProtocolKind,
    n: usize,
    cp: usize,
    wan: bool,
    duration: SimTime,
    seed: u64,
) -> RunReport {
    let config = RunConfig {
        protocol,
        n,
        client: ClientConfig {
            cp,
            entry_size: 8,
            max_inject_per_tick: 1_000,
            retry_ticks: 500,
        },
        tick_us: TICK_US,
        // The election timeout must exceed the heartbeat round trip, so
        // WAN deployments run with proportionally longer timeouts (the
        // paper's testbed would equally never run a 5 ms timeout over a
        // 145 ms RTT link).
        election_timeout_us: if wan { ms(500) } else { ms(5) },
        latency_us: 100, // 0.2 ms RTT LAN
        latency_overrides: if wan {
            wan_latency_overrides(n)
        } else {
            Vec::new()
        },
        duration,
        window_us: sec(1),
        gap_threshold_us: ms(100),
        seed,
        ..Default::default()
    };
    Runner::new(config).run()
}

// ----------------------------------------------------------------------
// §7.2 — partial connectivity (Fig. 8, Table 1)
// ----------------------------------------------------------------------

/// Which §2 scenario to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    QuorumLoss,
    ConstrainedElection,
    /// The 3-server chain of Fig. 1c (used by Fig. 8c).
    Chained,
    /// The 5-server chain of §2c's general argument: no fully-connected
    /// server exists, so protocols relying on one (Raft, VR, Multi-Paxos)
    /// livelock permanently — Table 1's chained column.
    ChainedFive,
}

impl Scenario {
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::QuorumLoss => "quorum-loss",
            Scenario::ConstrainedElection => "constrained",
            Scenario::Chained => "chained",
            Scenario::ChainedFive => "chained-5",
        }
    }
}

/// One §7.2 run: warm up fully connected, inject the scenario, heal, and
/// measure down-time within the partition window.
pub fn partition_run(
    protocol: ProtocolKind,
    scenario: Scenario,
    election_timeout_us: SimTime,
    partition_for: SimTime,
    seed: u64,
) -> PartitionOutcome {
    let n = match scenario {
        Scenario::Chained => 3,
        _ => 5,
    };
    let warmup = sec(5);
    let partition_at = warmup;
    let heal_at = partition_at + partition_for;
    let duration = heal_at + sec(5);
    let mut schedule: Vec<(SimTime, Action)> = Vec::new();
    match scenario {
        Scenario::QuorumLoss => schedule.push((partition_at, Action::QuorumLoss)),
        Scenario::ConstrainedElection => {
            // Disconnect the future hub from the leader first so its log is
            // outdated when it must win the election (§7.2). The gap must
            // stay *below* the election timeout: long enough for the leader
            // to replicate entries the hub misses, short enough that the
            // hub does not start an election before the full partition.
            let gap = (election_timeout_us / 2).max(TICK_US * 2);
            schedule.push((partition_at, Action::ConstrainedStage1));
            schedule.push((partition_at + gap, Action::ConstrainedStage2));
        }
        Scenario::Chained => schedule.push((partition_at, Action::Chained)),
        Scenario::ChainedFive => schedule.push((partition_at, Action::ChainedLine)),
    }
    schedule.push((heal_at, Action::HealAll));
    let config = RunConfig {
        protocol,
        n,
        client: ClientConfig {
            cp: 100,
            entry_size: 8,
            max_inject_per_tick: 100,
            retry_ticks: 100,
        },
        tick_us: TICK_US,
        election_timeout_us,
        latency_us: 100,
        duration,
        window_us: sec(1),
        gap_threshold_us: (election_timeout_us / 2).max(ms(20)),
        schedule,
        seed,
        ..Default::default()
    };
    let report = Runner::new(config).run();
    // For the constrained scenario the real partition starts at stage 2.
    let window_start = match scenario {
        Scenario::ConstrainedElection => partition_at + (election_timeout_us / 2).max(TICK_US * 2),
        _ => partition_at,
    };
    let downtime_us = report.decides.downtime_in(window_start, heal_at);
    let decided_during = report.decides.decided_in(window_start, heal_at);
    // "Recovered" = decided replies kept flowing after the scenario's
    // initial election disruption, well before the heal.
    let probe_from = window_start + partition_for / 2;
    let recovered = report.decides.decided_in(probe_from, heal_at) > 0;
    PartitionOutcome {
        protocol: report.protocol.clone(),
        downtime_us,
        recovered_during_partition: recovered,
        decided_during,
        total_decided: report.total_decided,
        leader_changes: report.leader_changes,
        final_rank: report.final_rank,
    }
}

// ----------------------------------------------------------------------
// §7.3 — reconfiguration (Fig. 9)
// ----------------------------------------------------------------------

/// One §7.3 run: 5 servers with a 120 MB history; replace one server or a
/// majority; measure throughput per window and leader IO.
pub fn reconfig_run(
    protocol: ProtocolKind,
    replace_majority: bool,
    cp: usize,
    seed: u64,
) -> ReconfigOutcome {
    assert!(matches!(
        protocol,
        ProtocolKind::OmniPaxos | ProtocolKind::OmniPaxosLeaderMigration | ProtocolKind::Raft
    ));
    let n = 5;
    let joiners = if replace_majority { 3 } else { 1 };
    // The initial configuration is pids 1..=5; the last server wins the
    // first Omni-Paxos election (max ballot), so keep it and replace
    // low-pid followers.
    let new_nodes: Vec<NodeId> = if replace_majority {
        vec![4, 5, 6, 7, 8]
    } else {
        vec![2, 3, 4, 5, 6]
    };
    let reconfig_at = sec(20);
    let duration = sec(80);
    let window_us = sec(5); // the paper's Fig. 9 window
    let config = RunConfig {
        protocol,
        n,
        joiners,
        client: ClientConfig {
            cp,
            entry_size: 8,
            max_inject_per_tick: 100,
            retry_ticks: 1_000,
        },
        tick_us: TICK_US,
        election_timeout_us: ms(50),
        latency_us: 100,
        nic_bytes_per_sec: Some(25_000_000), // 25 MB/s
        duration,
        initial_log: 750_000,
        initial_entry_size: 160, // 750 k × 160 B = 120 MB, the paper's volume
        window_us,
        gap_threshold_us: ms(100),
        schedule: vec![(reconfig_at, Action::Reconfigure(new_nodes))],
        seed,
        ..Default::default()
    };
    let report = Runner::new(config).run();
    summarize_reconfig(report, reconfig_at, window_us, duration)
}

fn summarize_reconfig(
    report: RunReport,
    submitted_at: SimTime,
    window_us: SimTime,
    duration: SimTime,
) -> ReconfigOutcome {
    let windows: Vec<u64> = report.decides.series().values().to_vec();
    let pre_from = (submitted_at / window_us).saturating_sub(5) as usize;
    let pre_to = (submitted_at / window_us) as usize;
    let baseline: f64 = if pre_to > pre_from {
        windows[pre_from..pre_to.min(windows.len())]
            .iter()
            .map(|&v| v as f64)
            .sum::<f64>()
            / (pre_to - pre_from) as f64
    } else {
        0.0
    };
    let mut worst = f64::INFINITY;
    let mut degraded_windows = 0u64;
    let post_from = pre_to;
    let post_to = ((duration / window_us) as usize).min(windows.len());
    for w in windows.iter().take(post_to).skip(post_from) {
        let rel = if baseline > 0.0 {
            *w as f64 / baseline
        } else {
            1.0
        };
        if rel < worst {
            worst = rel;
        }
        if rel < 0.9 {
            degraded_windows += 1;
        }
    }
    if !worst.is_finite() {
        worst = 1.0;
    }
    let downtime_us = report.decides.downtime_in(submitted_at, duration);
    ReconfigOutcome {
        protocol: report.protocol.clone(),
        baseline_tput: baseline * 1e6 / window_us as f64,
        worst_relative_tput: worst,
        degraded_for_us: degraded_windows * window_us,
        downtime_us,
        peak_io_bytes: report.max_peak_io(),
        max_node_bytes: report.bytes_sent.iter().map(|(_, b)| *b).max().unwrap_or(0),
        windows,
        window_us,
        submitted_at,
        completed_at: report.reconfig_done_at,
    }
}
