//! Shared helpers for the figure/table generator binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§7); see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

use simulator::{mean_and_ci95, SimTime, Summary};

/// Repetitions per data point (the paper uses 10 testbed runs; simulated
/// runs vary by seed instead). Override with `--quick` for a single seed.
pub const SEEDS: [u64; 3] = [11, 23, 42];

/// Parse a `--quick` flag from the CLI (single seed, shorter runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The seeds to use given the mode.
pub fn seeds() -> Vec<u64> {
    if quick_mode() {
        vec![SEEDS[0]]
    } else {
        SEEDS.to_vec()
    }
}

/// Format a throughput summary as `mean ± ci` in kilo-ops/s.
pub fn fmt_kops(s: &Summary) -> String {
    format!("{:7.1} ± {:5.1} k/s", s.mean / 1e3, s.ci95 / 1e3)
}

/// Summarize a set of per-seed samples.
pub fn summarize(samples: &[f64]) -> Summary {
    mean_and_ci95(samples)
}

/// Format a duration in seconds with millisecond resolution.
pub fn fmt_secs(t: SimTime) -> String {
    format!("{:.3}s", t as f64 / 1e6)
}

/// Render a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Print a header line followed by a separator of the same arity.
pub fn print_header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kops_formatting() {
        let s = summarize(&[250_000.0, 260_000.0, 240_000.0]);
        let out = fmt_kops(&s);
        assert!(out.contains("250.0"), "{out}");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(1_500_000), "1.500s");
        assert_eq!(fmt_secs(0), "0.000s");
    }
}
