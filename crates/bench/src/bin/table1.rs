//! Regenerate **Table 1** of the paper: the partial-connectivity scenario
//! matrix. Runs every protocol through every §2 scenario in the simulator
//! and prints ✓ (stable progress) or ✗ (unavailable), alongside the static
//! protocol properties.
//!
//! Usage: `cargo run -p bench --bin table1 --release [-- --quick]`

use bench::{print_header, row, seeds};
use cluster::protocol::ProtocolKind;
use cluster::scenarios::{partition_run, Scenario};
use simulator::{ms, sec};

fn main() {
    let timeout = ms(50);
    let partition = sec(6);
    println!("# Table 1 — protocol properties and partial-connectivity scenarios\n");
    println!(
        "(simulated: election timeout 50 ms, partition 6 s, seeds {:?})\n",
        seeds()
    );
    print_header(&[
        "Protocol    ",
        "Log sync phase",
        "Candidate req.  ",
        "Vote gossip",
        "QC heartbeats",
        "Quorum-loss",
        "Constrained",
        "Chained",
    ]);
    let properties: [(ProtocolKind, &str, &str, &str, &str); 5] = [
        (ProtocolKind::MultiPaxos, "yes", "QC", "yes", "no"),
        (ProtocolKind::Raft, "no", "QC + max log", "yes", "no"),
        (ProtocolKind::RaftPvCq, "no", "QC + max log", "yes", "no"),
        (ProtocolKind::Vr, "yes", "QC + EQC", "yes", "no"),
        (ProtocolKind::OmniPaxos, "yes", "QC", "no", "yes"),
    ];
    for (protocol, sync, cand, gossip, qc_hb) in properties {
        let mut cells = vec![
            protocol.name().to_string(),
            sync.to_string(),
            cand.to_string(),
            gossip.to_string(),
            qc_hb.to_string(),
        ];
        for scenario in [
            Scenario::QuorumLoss,
            Scenario::ConstrainedElection,
            Scenario::ChainedFive,
        ] {
            // A scenario is ✓ only if every seed recovers *stably*. The
            // chained column uses the 5-server chain of §2c, where no
            // fully-connected server exists: protocols that gossip leader
            // votes churn forever — surfaced through the leader-change
            // count.
            let mut ok = true;
            let mut max_changes = 0;
            for seed in seeds() {
                let o = partition_run(protocol, scenario, timeout, partition, seed);
                ok &= o.recovered_during_partition;
                max_changes = max_changes.max(o.leader_changes);
            }
            let livelocked = scenario == Scenario::ChainedFive && max_changes >= 10;
            cells.push(if ok && !livelocked {
                "✓".to_string()
            } else if ok && livelocked {
                "✗ (livelock)".to_string()
            } else {
                "✗ (deadlock)".to_string()
            });
        }
        println!("{}", row(&cells));
    }
    println!(
        "\nPaper's claim: Omni-Paxos is the only all-✓ row; it guarantees \
         progress with ≥1 QC server while the others need ≥⌈N/2⌉."
    );
}
