//! Regenerate **Figure 9** of the paper: reconfiguration speed.
//!
//! * 9a/9b — replace a single server under CP ∈ {5k, 50k}: throughput per
//!   window, worst drop, degraded period, peak leader IO.
//! * 9c — replace a majority of servers.
//!
//! Also runs the `MigrationScheme::LeaderOnly` ablation of §6.1 (the
//! design-choice comparison DESIGN.md calls out): Omni-Paxos restricted to
//! leader-driven migration, isolating the benefit of parallel migration
//! from the rest of the system.
//!
//! Usage:
//!   `cargo run -p bench --bin fig9 --release [-- single|majority] [--quick]`

use bench::{fmt_secs, print_header, quick_mode, row};
use cluster::protocol::ProtocolKind;
use cluster::scenarios::{reconfig_run, ReconfigOutcome};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    let modes: Vec<bool> = match which.as_str() {
        "single" => vec![false],
        "majority" => vec![true],
        _ => vec![false, true],
    };
    let cps: Vec<usize> = if quick_mode() {
        vec![5_000]
    } else {
        vec![5_000, 50_000]
    };
    println!("# Figure 9 — reconfiguration (5 servers, 120 MB history to migrate)\n");
    for replace_majority in modes {
        println!(
            "## Replace {} (Fig. 9{})\n",
            if replace_majority {
                "a majority (3 of 5)"
            } else {
                "one server"
            },
            if replace_majority { "c" } else { "a/b" }
        );
        for &cp in &cps {
            println!("### CP = {cp}\n");
            print_header(&[
                "Protocol                          ",
                "worst tput (rel.)",
                "degraded for",
                "down-time",
                "reconfig done in",
                "peak IO / 5s-window",
            ]);
            for protocol in [
                ProtocolKind::OmniPaxos,
                ProtocolKind::OmniPaxosLeaderMigration,
                ProtocolKind::Raft,
            ] {
                let o = reconfig_run(protocol, replace_majority, cp, 11);
                println!("{}", row(&fmt_outcome(&o)));
                print_windows(&o);
            }
            println!();
        }
    }
    println!(
        "Paper's claims (C3): replacing one server costs Raft up to a 90% \
         throughput drop over 55 s vs 20% over 15 s for Omni-Paxos; replacing \
         a majority leaves Raft fully down for up to 40 s (120 s to recover) \
         while Omni-Paxos recovers after ~15 s; leader peak IO is several \
         times lower with parallel migration (109 MB vs 30 MB per 5 s window, \
         46% less total leader IO)."
    );
}

fn fmt_outcome(o: &ReconfigOutcome) -> Vec<String> {
    vec![
        o.protocol.clone(),
        format!("{:5.1} %", o.worst_relative_tput * 100.0),
        fmt_secs(o.degraded_for_us),
        fmt_secs(o.downtime_us),
        o.completed_at
            .map(|t| fmt_secs(t.saturating_sub(o.submitted_at)))
            .unwrap_or_else(|| "NOT COMPLETED".into()),
        format!("{:6.1} MB", o.peak_io_bytes as f64 / 1e6),
    ]
}

fn print_windows(o: &ReconfigOutcome) {
    let per_sec = 1e6 / o.window_us as f64;
    let series: Vec<String> = o
        .windows
        .iter()
        .map(|w| format!("{:.0}k", *w as f64 * per_sec / 1e3))
        .collect();
    println!(
        "  throughput per {}s window (k/s): [{}]",
        o.window_us / 1_000_000,
        series.join(", ")
    );
}
