//! Regenerate **Figure 7** of the paper: regular-execution throughput for
//! 3 and 5 servers, LAN and WAN, CP ∈ {500, 5k, 50k}, with 95% CIs.
//!
//! Usage: `cargo run -p bench --bin fig7 --release [-- --quick]`

use bench::{fmt_kops, print_header, quick_mode, row, seeds, summarize};
use cluster::protocol::ProtocolKind;
use cluster::scenarios::normal_run;
use simulator::sec;

fn main() {
    let duration = if quick_mode() { sec(3) } else { sec(5) };
    let measure_from = sec(2);
    let protocols = [
        ProtocolKind::OmniPaxos,
        ProtocolKind::Raft,
        ProtocolKind::MultiPaxos,
    ];
    let cps = [500usize, 5_000, 50_000];
    println!("# Figure 7 — regular execution throughput (decided cmds/s)\n");
    println!(
        "(simulated {}s per run, measured after {}s warmup, seeds {:?})\n",
        duration / sec(1),
        measure_from / sec(1),
        seeds()
    );
    for wan in [false, true] {
        for n in [3usize, 5] {
            println!(
                "## {} servers, {}\n",
                n,
                if wan {
                    "WAN (RTT 105/145 ms)"
                } else {
                    "LAN (RTT 0.2 ms)"
                }
            );
            print_header(&[
                "CP    ",
                "Omni-Paxos       ",
                "Raft             ",
                "Multi-Paxos      ",
                "latency p50/p99 (Omni)",
            ]);
            for cp in cps {
                let mut cells = vec![format!("{cp:>6}")];
                let mut omni_latency = String::new();
                for protocol in protocols {
                    let mut samples: Vec<f64> = Vec::new();
                    for seed in seeds() {
                        let report = normal_run(protocol, n, cp, wan, duration, seed);
                        samples.push(report.throughput_in(measure_from, duration));
                        if protocol == ProtocolKind::OmniPaxos && omni_latency.is_empty() {
                            omni_latency = format!(
                                "{:.1} / {:.1} ms",
                                report.latency.quantile_us(0.5) as f64 / 1e3,
                                report.latency.quantile_us(0.99) as f64 / 1e3
                            );
                        }
                    }
                    cells.push(fmt_kops(&summarize(&samples)));
                }
                cells.push(omni_latency);
                println!("{}", row(&cells));
            }
            println!();
        }
    }
    println!(
        "Paper's claim (C2): similar throughput between Omni-Paxos, Raft and \
         Multi-Paxos with overlapping confidence intervals; BLE heartbeat \
         overhead is negligible."
    );
}
