//! `hotpath` — offline benchmark of the replication hot path.
//!
//! Two scenarios, both driven directly (no simulated network), so the
//! measured wall-clock is dominated by the engine's own copying and
//! allocation behaviour rather than by scheduling:
//!
//! * **replication** — a 5-server cluster decides a stream of entries.
//!   The leader fans each drained batch out to four followers; this is
//!   the `AcceptDecide` path whose per-follower deep copies the
//!   zero-copy refactor removes.
//! * **migration** — a reconfiguration that replaces a majority of a
//!   5-server cluster (Fig. 9 shape): three joiners each pull the full
//!   multi-million-entry log from the five donors in parallel stripes.
//! * **catchup** (`-- --catchup`) — a follower partitioned long enough to
//!   miss a large decided log heals and re-syncs, once via full log
//!   replay and once snapshot-first after the leader compacted: the
//!   state-machine snapshot ([`CounterSm`]) plus the tail replaces
//!   replaying the whole log. Writes `BENCH_PR2.json`.
//! * **net-loopback** (`-- --net-loopback`) — a real 3-replica kv
//!   cluster over the `crates/net` TCP transport on 127.0.0.1, measured
//!   open loop: a pipelined client sweeps its in-flight window from 1 to
//!   10,000 (throughput + p50/p99 per point), against a closed-loop
//!   comparison point, with every completion audited exactly-once and
//!   final values checked by linearizable reads. Also measures WAL group
//!   commit directly (entries per fsync). Writes `BENCH_PR6.json`.
//! * **read modes** (`-- --reads`) — the same loopback cluster with
//!   leader leases enabled, driven with a 95/5 read/write open-loop mix
//!   once per read mode (log / lease / read-index): lease reads skip
//!   the log entirely, and the decided-log length after each run proves
//!   it. Writes `BENCH_PR8.json`.
//! * **txn mix** (`-- --txn-mix`) — a 4-shard loopback cluster under an
//!   80/15/5 put/cas/cross-shard-transfer mix with per-class latency
//!   percentiles; CAS verdicts, committed-transfer balances, and total
//!   conservation are all predicted client-side and audited. Writes
//!   `BENCH_PR9.json`.
//!
//! Run with `cargo run --release --bin hotpath` (add `-- --quick` for a
//! fast smoke run). Results are printed and written to `BENCH_PR1.json`;
//! pass `-- --baseline <repl_eps>,<mig_eps>` to embed previously
//! recorded pre-change numbers so the file carries both sides of the
//! comparison.

use std::time::Instant;

use omnipaxos::snapshot::Snapshottable;
use omnipaxos::{
    CounterSm, LogEntry, MemoryStorage, NodeId, OmniPaxos, OmniPaxosConfig, OmniPaxosServer,
    ServerConfig, ServerRole,
};

type Replica = OmniPaxos<u64, MemoryStorage<u64>>;

/// Deliver queued messages directly until the wire is quiet.
fn pump(replicas: &mut [Replica], rounds: usize) {
    for _ in 0..rounds {
        for i in 0..replicas.len() {
            for m in replicas[i].outgoing_messages() {
                let to = m.to() as usize - 1;
                replicas[to].handle_message(m);
            }
        }
    }
}

/// Scenario (a): 5-server replication throughput, decided entries/sec.
fn bench_replication(total: u64, batch: u64) -> (f64, f64) {
    let nodes: Vec<NodeId> = (1..=5).collect();
    let mut replicas: Vec<Replica> = nodes
        .iter()
        .map(|&pid| {
            OmniPaxos::new(
                OmniPaxosConfig::with(1, pid, nodes.clone()),
                MemoryStorage::new(),
            )
        })
        .collect();
    // Elect a leader: tick + deliver until someone claims leadership.
    for _ in 0..100 {
        for r in replicas.iter_mut() {
            r.tick();
        }
        pump(&mut replicas, 1);
        if replicas.iter().any(|r| r.is_leader()) {
            break;
        }
    }
    let leader = replicas.iter().position(|r| r.is_leader()).expect("leader");

    let start = Instant::now();
    let mut appended = 0u64;
    while appended < total {
        let n = batch.min(total - appended);
        for v in 0..n {
            replicas[leader].append(appended + v).expect("append");
        }
        appended += n;
        // One batch round-trip: AcceptDecide out, Accepted back, Decide out.
        pump(&mut replicas, 3);
    }
    let mut guard = 0;
    while replicas.iter().any(|r| r.decided_idx() < total) {
        pump(&mut replicas, 3);
        guard += 1;
        assert!(guard < 1_000, "replication failed to settle");
    }
    let elapsed = start.elapsed().as_secs_f64();
    (elapsed, total as f64 / elapsed)
}

type Server = OmniPaxosServer<u64>;

/// Tick every server once, then deliver messages until the wire is quiet.
fn step(servers: &mut [Server]) {
    for s in servers.iter_mut() {
        s.tick();
    }
    loop {
        let mut wire = Vec::new();
        for s in servers.iter_mut() {
            let from = s.pid();
            for (to, msg) in s.outgoing() {
                wire.push((from, to, msg));
            }
        }
        if wire.is_empty() {
            break;
        }
        for (from, to, msg) in wire {
            servers[to as usize - 1].handle(from, msg);
        }
    }
}

/// Scenario (b): majority-replacement reconfiguration over a large log.
/// Servers 1-5 hold `size` decided entries; the new configuration is
/// {4,5,6,7,8}, so joiners 6-8 each migrate the full log from 5 donors.
fn bench_migration(size: u64) -> (f64, f64) {
    let old_nodes: Vec<NodeId> = (1..=5).collect();
    let new_nodes: Vec<NodeId> = (4..=8).collect();
    let mut servers: Vec<Server> = Vec::new();
    for pid in 1..=8u64 {
        if pid <= 5 {
            servers.push(OmniPaxosServer::with_storage(
                ServerConfig::with(pid),
                old_nodes.clone(),
                MemoryStorage::with_decided_log((0..size).collect()),
            ));
        } else {
            servers.push(OmniPaxosServer::new_joiner(ServerConfig::with(pid)));
        }
    }
    // Settle: initial history applied everywhere, a leader elected.
    let mut guard = 0;
    while !(servers[..5].iter().all(|s| s.log().len() as u64 == size)
        && servers[..5].iter().any(|s| s.is_leader()))
    {
        step(&mut servers);
        guard += 1;
        assert!(guard < 500, "initial configuration failed to settle");
    }
    let leader = servers[..5]
        .iter()
        .position(|s| s.is_leader())
        .expect("leader");

    let start = Instant::now();
    servers[leader]
        .reconfigure(new_nodes.clone())
        .expect("reconfigure");
    let done = |servers: &[Server]| {
        new_nodes.iter().all(|&pid| {
            let s = &servers[pid as usize - 1];
            s.config_id() == 2 && s.role() == ServerRole::Active && s.log().len() as u64 >= size
        })
    };
    let mut guard = 0;
    while !done(&servers) {
        step(&mut servers);
        guard += 1;
        assert!(guard < 5_000, "migration failed to complete");
    }
    let elapsed = start.elapsed().as_secs_f64();
    (elapsed, size as f64 / elapsed)
}

/// Deliver queued messages for `rounds` rounds with ticks, dropping
/// anything to or from the nodes in `cut` (a network partition).
fn pump_cut(replicas: &mut [Replica], rounds: usize, cut: &[u64]) {
    for _ in 0..rounds {
        for i in 0..replicas.len() {
            replicas[i].tick();
            let from = replicas[i].pid();
            for m in replicas[i].outgoing_messages() {
                let to = m.to();
                if cut.contains(&from) || cut.contains(&to) {
                    continue;
                }
                replicas[(to - 1) as usize].handle_message(m);
            }
        }
    }
}

/// Scenario (c): a follower partitioned while `size` entries were decided
/// heals and catches up. With `compacted == false` the leader still holds
/// the full log and the follower replays it; with `compacted == true` the
/// connected servers compacted the whole log into a [`CounterSm`] snapshot,
/// so the follower receives O(state) bytes plus an empty tail instead of
/// `size` entries. Timed region: heal → follower's state machine caught up.
/// Returns (elapsed, catch-up entries/sec equivalent).
fn bench_catchup(size: u64, compacted: bool) -> (f64, f64) {
    let nodes: Vec<NodeId> = (1..=3).collect();
    let mut replicas: Vec<Replica> = nodes
        .iter()
        .map(|&pid| {
            OmniPaxos::new(
                OmniPaxosConfig::with(1, pid, nodes.clone()),
                MemoryStorage::new(),
            )
        })
        .collect();
    pump_cut(&mut replicas, 60, &[]);
    let leader = replicas.iter().position(|r| r.is_leader()).expect("leader");
    let follower = (leader + 1) % 3;
    let follower_pid = (follower + 1) as u64;

    // Decide `size` entries behind the follower's back.
    let cut = [follower_pid];
    let mut appended = 0u64;
    while appended < size {
        let n = 4_096.min(size - appended);
        for v in 1..=n {
            replicas[leader].append(appended + v).expect("append");
        }
        appended += n;
        pump_cut(&mut replicas, 3, &cut);
    }
    let mut guard = 0;
    while replicas[leader].decided_idx() < size {
        pump_cut(&mut replicas, 3, &cut);
        guard += 1;
        assert!(guard < 1_000, "majority failed to settle");
    }
    let expected_sum = (1..=size).fold(0u64, u64::wrapping_add);
    if compacted {
        // The application checkpointed its state machine and trimmed the
        // whole log: the prefix only exists as a 16-byte snapshot now.
        let mut sm = CounterSm::default();
        for v in 1..=size {
            sm.apply(v);
        }
        let snap = sm.snapshot();
        for (i, r) in replicas.iter_mut().enumerate() {
            if i != follower {
                r.compact(size, snap.clone()).expect("compact");
            }
        }
        pump_cut(&mut replicas, 10, &cut);
    }
    assert_eq!(replicas[follower].decided_idx(), 0, "follower is cut off");

    // Timed: heal the partition and run until the follower's state
    // machine has caught up (replay or snapshot restore + tail).
    let start = Instant::now();
    for r in replicas.iter_mut() {
        for &p in &nodes {
            if p != r.pid() {
                r.reconnected(p);
            }
        }
    }
    let mut guard = 0;
    while replicas[follower].decided_idx() < size {
        pump_cut(&mut replicas, 1, &[]);
        guard += 1;
        assert!(guard < 10_000, "follower failed to catch up");
    }
    let mut sm = CounterSm::default();
    let from = match replicas[follower].take_installed_snapshot() {
        Some((idx, data)) => {
            sm.restore(&data);
            idx
        }
        None => 0,
    };
    for e in replicas[follower].read_decided(from) {
        if let LogEntry::Normal(v) = e {
            sm.apply(v);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(sm.applied, size, "state machine caught up");
    assert_eq!(sm.sum, expected_sum, "state machine checksum");
    assert_eq!(
        compacted,
        replicas[follower].compacted_idx() == size,
        "snapshot path taken exactly when the log was trimmed"
    );
    (elapsed, size as f64 / elapsed)
}

/// Nearest-rank percentile over an already-sorted latency sample.
fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

/// Direct WAL group-commit measurement: batched appends between fsyncs,
/// reported as entries made durable per `sync_data` call. Returns
/// `(appends, syncs, entries_per_sync, elapsed_s)`.
fn bench_wal_group_commit(quick: bool) -> (u64, u64, f64, f64) {
    use omnipaxos::{LogEntry, Storage, WalStorage};
    let dir = std::env::temp_dir().join(format!("omni-wal-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("wal bench dir");
    let path = dir.join("group-commit.wal");
    let _ = std::fs::remove_file(&path);
    let rounds: u64 = if quick { 20 } else { 200 };
    let batch: u64 = 512;
    let mut wal: WalStorage<u64> = WalStorage::open(&path).expect("open wal");
    let start = Instant::now();
    for r in 0..rounds {
        let entries: Vec<LogEntry<u64>> = (0..batch)
            .map(|v| LogEntry::Normal(r * batch + v))
            .collect();
        wal.append_entries(entries).expect("append batch");
        wal.sync().expect("sync");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let (syncs, committed) = wal.group_commit_stats();
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        committed,
        rounds * batch,
        "every appended entry group-committed"
    );
    let per_sync = committed as f64 / syncs.max(1) as f64;
    (committed, syncs, per_sync, elapsed)
}

/// `--net-loopback`: a real 3-replica kv cluster over TCP on 127.0.0.1
/// (the `crates/net` transport, not the simulator), measured *open loop*:
/// a pipelined client sweeps its in-flight window from 1 to 10,000 and
/// each point reports throughput and p50/p99 submit→completion latency.
/// A closed-loop client provides the lockstep comparison point. Under
/// load, every seq must complete exactly once, final values must read
/// back linearizably, and the three replicas (session tables included)
/// must converge to identical states. Written to `BENCH_PR6.json`.
fn run_net_loopback(quick: bool) {
    use kvstore::{KvCommand, KvNode, KvOp};
    use net::server::{ClientGateway, KvServer};
    use net::tcp::{TcpConfig, TcpTransport};
    use net::{KvClient, NetworkLink, PipelinedKvClient};
    use omnipaxos::ServiceMsg;
    use std::collections::{HashMap, HashSet};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    type Transport = TcpTransport<ServiceMsg<KvCommand>>;

    println!("hotpath: net-loopback open-loop sweep (3 replicas over TCP)");

    // Boot: ephemeral replication + gateway ports, one drive thread per node.
    let mut listeners = HashMap::new();
    let mut repl_addrs = HashMap::new();
    for pid in 1..=3u64 {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind replication port");
        repl_addrs.insert(pid, l.local_addr().unwrap());
        listeners.insert(pid, l);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    let mut client_addrs = Vec::new();
    for pid in 1..=3u64 {
        let transport = Transport::with_listener(
            pid,
            listeners.remove(&pid).unwrap(),
            repl_addrs.clone(),
            TcpConfig::default(),
        )
        .expect("transport");
        let gateway =
            ClientGateway::bind(TcpListener::bind("127.0.0.1:0").unwrap()).expect("gateway");
        client_addrs.push((pid, gateway.local_addr()));
        let server =
            KvServer::new(KvNode::new(pid, vec![1, 2, 3]), transport).with_gateway(gateway);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            server.run(Duration::from_millis(3), stop)
        }));
    }

    let mut client = KvClient::new(0xBE9C4, client_addrs.clone());
    // Warmup: rides out leader election and fills the session caches.
    for i in 0..50u64 {
        client.put("warm", i as i64).expect("warmup put");
    }

    // Closed-loop comparison point: one put at a time, lockstep.
    let closed_ops: u64 = if quick { 200 } else { 1_000 };
    let mut closed_lat: Vec<f64> = Vec::with_capacity(closed_ops as usize);
    let start = Instant::now();
    for i in 0..closed_ops {
        let t = Instant::now();
        let r = client.put(&format!("k{}", i % 64), i as i64).expect("put");
        assert!(r.applied, "fresh put must apply");
        closed_lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let closed_elapsed = start.elapsed().as_secs_f64();
    closed_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let closed_mean = closed_lat.iter().sum::<f64>() / closed_lat.len() as f64;
    let closed_ops_sec = closed_ops as f64 / closed_elapsed;
    println!(
        "  closed loop: {closed_ops_sec:.0} ops/sec  p50 {:.0}us  p99 {:.0}us",
        percentile(&closed_lat, 0.50),
        percentile(&closed_lat, 0.99)
    );

    // Open-loop sweep: in-flight window 1 → 10,000. The client-side
    // model tracks the last submitted value per key; per-key order is
    // guaranteed by contiguous admission, so the linearizable audit
    // below must see exactly these values.
    struct Point {
        window: usize,
        ops: u64,
        elapsed: f64,
        ops_sec: f64,
        p50: f64,
        p99: f64,
        mean: f64,
        retries: u64,
    }
    let windows: &[usize] = &[1, 16, 128, 1_024, 4_096, 10_000];
    let mut pipe = PipelinedKvClient::new(0xBE9C5, client_addrs.clone());
    let mut model: HashMap<String, i64> = HashMap::new();
    let mut points: Vec<Point> = Vec::new();
    let mut value_counter = 0i64;
    for &window in windows {
        let ops: u64 = if quick {
            (window as u64 * 4).clamp(300, 8_000)
        } else {
            (window as u64 * 20).clamp(2_000, 100_000)
        };
        let retries_before = pipe.retries_seen();
        let mut lat: Vec<f64> = Vec::with_capacity(ops as usize);
        let mut starts: HashMap<u64, Instant> = HashMap::new();
        let mut seen: HashSet<u64> = HashSet::with_capacity(ops as usize);
        let mut submitted = 0u64;
        let start = Instant::now();
        while (seen.len() as u64) < ops {
            while submitted < ops && pipe.in_flight() < window {
                let key = format!("k{}", submitted % 64);
                value_counter += 1;
                model.insert(key.clone(), value_counter);
                let seq = pipe.submit(KvOp::Put {
                    key,
                    value: value_counter,
                });
                starts.insert(seq, Instant::now());
                submitted += 1;
            }
            for r in pipe
                .wait(Duration::from_millis(50))
                .expect("pipelined put under sweep")
            {
                assert!(seen.insert(r.seq), "seq {} completed twice", r.seq);
                if let Some(t0) = starts.remove(&r.seq) {
                    lat.push(t0.elapsed().as_secs_f64() * 1e6);
                }
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let point = Point {
            window,
            ops,
            elapsed,
            ops_sec: ops as f64 / elapsed,
            p50: percentile(&lat, 0.50),
            p99: percentile(&lat, 0.99),
            mean: lat.iter().sum::<f64>() / lat.len().max(1) as f64,
            retries: pipe.retries_seen() - retries_before,
        };
        println!(
            "  open loop w={:<6} {:>8.0} ops/sec  p50 {:>7.0}us  p99 {:>8.0}us  ({} retries)",
            point.window, point.ops_sec, point.p50, point.p99, point.retries
        );
        points.push(point);
    }

    // Linearizable audit: every key must read back as the last value the
    // open-loop client submitted for it (per-key order survived
    // shedding, redirects, and retransmission).
    for (k, v) in &model {
        assert_eq!(
            client.read(k).expect("audit read"),
            Some(*v),
            "linearizable audit of {k}"
        );
    }
    // Give followers a moment to apply the tail, then snapshot states.
    client.put("sentinel", 1).expect("sentinel");
    std::thread::sleep(Duration::from_millis(500));

    stop.store(true, Ordering::SeqCst);
    let servers: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("node"))
        .collect();
    let sm0 = servers[0].node().shard(0).state_machine();
    assert!(
        servers[1..]
            .iter()
            .all(|s| s.node().shard(0).state_machine() == sm0),
        "replicas (session tables included) must converge"
    );

    let (mut msgs_sent, mut bytes_sent, mut sessions) = (0u64, 0u64, 0u64);
    let (mut wbatches, mut wframes, mut wbytes) = (0u64, 0u64, 0u64);
    let (mut hb_sent, mut hb_supp) = (0u64, 0u64);
    let (mut pbatches, mut pops) = (0u64, 0u64);
    let (mut rbatches, mut rframes) = (0u64, 0u64);
    let mut shed = 0u64;
    for s in &servers {
        if let Some(link) = s.link() {
            let c = link.counters();
            msgs_sent += c.msgs_sent;
            bytes_sent += c.bytes_sent;
            sessions += c.sessions_established;
            wbatches += c.writer_batches;
            wframes += c.writer_frames;
            wbytes += c.writer_bytes;
            hb_sent += c.heartbeats_sent;
            hb_supp += c.heartbeats_suppressed;
        }
        let (pb, po) = s.proposal_stats();
        pbatches += pb;
        pops += po;
        let (rb, rf) = s.gateway_reply_stats();
        rbatches += rb;
        rframes += rf;
        shed += s.shed_requests();
    }

    println!("hotpath: wal group commit (direct WalStorage measurement)");
    let (wal_entries, wal_syncs, wal_per_sync, wal_elapsed) = bench_wal_group_commit(quick);
    println!(
        "  {wal_entries} entries in {wal_syncs} fsyncs ({wal_per_sync:.0} entries/fsync, {:.0} entries/sec)",
        wal_entries as f64 / wal_elapsed.max(1e-9)
    );

    let best = points
        .iter()
        .max_by(|a, b| a.ops_sec.partial_cmp(&b.ops_sec).unwrap())
        .expect("sweep points");
    let speedup = best.ops_sec / closed_ops_sec;
    println!(
        "  best: {:.0} ops/sec at w={} ({speedup:.1}x the closed loop)",
        best.ops_sec, best.window
    );

    let sweep_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"in_flight\": {},\n      \"ops\": {},\n      \"elapsed_s\": {:.3},\n      \"ops_per_sec\": {},\n      \"p50_us\": {},\n      \"p99_us\": {},\n      \"mean_us\": {},\n      \"retries\": {}\n    }}",
                p.window,
                p.ops,
                p.elapsed,
                json_num(p.ops_sec),
                json_num(p.p50),
                json_num(p.p99),
                json_num(p.mean),
                p.retries
            )
        })
        .collect();
    let out = format!(
        "{{\n  \"bench\": \"net-open-loop\",\n  \"quick\": {quick},\n  \"replicas\": 3,\n  \"closed_loop\": {{\n    \"ops\": {closed_ops},\n    \"elapsed_s\": {closed_elapsed:.3},\n    \"ops_per_sec\": {},\n    \"p50_us\": {},\n    \"p99_us\": {},\n    \"mean_us\": {}\n  }},\n  \"open_loop_sweep\": [\n{}\n  ],\n  \"best\": {{\n    \"in_flight\": {},\n    \"ops_per_sec\": {},\n    \"speedup_vs_closed_loop\": {}\n  }},\n  \"transport\": {{\n    \"replication_msgs_sent\": {msgs_sent},\n    \"replication_bytes_sent\": {bytes_sent},\n    \"sessions_established\": {sessions},\n    \"writer_batches\": {wbatches},\n    \"writer_frames\": {wframes},\n    \"writer_bytes\": {wbytes},\n    \"heartbeats_sent\": {hb_sent},\n    \"heartbeats_suppressed\": {hb_supp}\n  }},\n  \"server\": {{\n    \"proposal_batches\": {pbatches},\n    \"proposed_ops\": {pops},\n    \"reply_batches\": {rbatches},\n    \"reply_frames\": {rframes},\n    \"shed_requests\": {shed}\n  }},\n  \"wal_group_commit\": {{\n    \"entries\": {wal_entries},\n    \"syncs\": {wal_syncs},\n    \"entries_per_sync\": {},\n    \"elapsed_s\": {wal_elapsed:.3}\n  }},\n  \"checks\": {{\n    \"completions_exactly_once\": 1,\n    \"final_reads_linearizable\": 1,\n    \"replicas_converged\": 1\n  }}\n}}\n",
        json_num(closed_ops_sec),
        json_num(percentile(&closed_lat, 0.50)),
        json_num(percentile(&closed_lat, 0.99)),
        json_num(closed_mean),
        sweep_json.join(",\n"),
        best.window,
        json_num(best.ops_sec),
        if speedup.is_finite() {
            format!("{speedup:.2}")
        } else {
            "null".into()
        },
        json_num(wal_per_sync),
    );
    std::fs::write("BENCH_PR6.json", &out).expect("write BENCH_PR6.json");
    print!("{out}");
}

/// `--net-loopback --shards`: the sharded open-loop sweep. Boots the same
/// 3-replica TCP loopback cluster once per shard count in {1, 2, 4} —
/// per-shard Omni-Paxos groups multiplexed over shared sessions, leaders
/// spread round-robin — and drives a [`net::ShardedKvClient`] open loop.
/// Peak throughput per shard count is found by sweeping the per-shard
/// in-flight window (up to the gateway's per-shard admission bound,
/// which replies Busy beyond `DEFAULT_MAX_PENDING` pending commands per
/// group) and keeping the best point. Groups scale across cores, so the
/// sweep also measures the host's *effective* parallelism (cgroup quotas
/// make `nproc` a lie) and each point's CPU saturation, and records both:
/// on a single-core host every shard count converges to the same
/// CPU-saturated ceiling and `scaling_1_to_4 ≈ 1`, which is the honest
/// result there — the gate in `check_bench.sh` reads
/// `host_effective_cores` to decide what scaling to demand. Each point
/// self-audits: exactly-once per `(shard, seq)`, linearizable final
/// reads through a routing-oblivious client, and per-shard replica
/// convergence (session tables included). Writes `BENCH_PR7.json` with
/// the 1→4 scaling factor.
fn run_net_sharded(quick: bool) {
    use kvstore::{KvCommand, KvOp, ShardedKvNode};
    use net::server::{ClientGateway, KvServer};
    use net::tcp::{TcpConfig, TcpTransport};
    use net::{fetch_shards, KvClient, ShardedKvClient};
    use omnipaxos::ServiceMsg;
    use std::collections::{HashMap, HashSet};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    type Transport = TcpTransport<ServiceMsg<KvCommand>>;

    println!("hotpath: sharded net-loopback sweep (3 replicas over TCP, shards 1/2/4)");

    struct ShardPoint {
        shards: usize,
        ops: u64,
        elapsed: f64,
        ops_sec: f64,
        p50: f64,
        p99: f64,
        retries: u64,
        per_shard_ops: Vec<u64>,
        distinct_leaders: usize,
        cpu_cores_busy: f64,
        window: usize,
    }
    let shard_counts: &[usize] = &[1, 2, 4];
    // Peak = max over offered load: each shard count is swept over
    // per-shard in-flight windows (capped by the gateway's per-shard
    // admission bound) and reports its best point. A saturated host
    // peaks at a small aggregate window; a host with spare cores keeps
    // gaining from deeper per-group pipelines.
    let windows: &[usize] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 4096]
    };
    assert!(windows
        .iter()
        .all(|&w| w <= net::server::DEFAULT_MAX_PENDING));
    let mut points: Vec<ShardPoint> = Vec::new();

    // Whether shard-count scaling is physically possible on this host:
    // groups parallelize across cores, so a host whose scheduler grants
    // one core total (cgroup quota, single-cpu VM) runs every shard count
    // at the same CPU-saturated ceiling. Measured, not assumed — the
    // number and the per-point saturation evidence go into the JSON so
    // the gate in check_bench.sh can judge the sweep honestly.
    let effective_cores = measure_effective_cores();
    println!("  host effective cores: {effective_cores:.2}");

    for &shards in shard_counts {
        // Boot a fresh cluster for this shard count (shard count is part
        // of the routing contract; it cannot change on a live cluster).
        let mut listeners = HashMap::new();
        let mut repl_addrs = HashMap::new();
        for pid in 1..=3u64 {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind replication port");
            repl_addrs.insert(pid, l.local_addr().unwrap());
            listeners.insert(pid, l);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        let mut client_addrs = Vec::new();
        for pid in 1..=3u64 {
            let transport = Transport::with_listener(
                pid,
                listeners.remove(&pid).unwrap(),
                repl_addrs.clone(),
                TcpConfig::default(),
            )
            .expect("transport");
            let gateway =
                ClientGateway::bind(TcpListener::bind("127.0.0.1:0").unwrap()).expect("gateway");
            client_addrs.push((pid, gateway.local_addr()));
            let node = ShardedKvNode::new(pid, vec![1, 2, 3], shards);
            let server = KvServer::new_sharded(node, transport).with_gateway(gateway);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                server.run(Duration::from_millis(3), stop)
            }));
        }

        // Wait for routing to converge: every shard has a leader.
        let deadline = Instant::now() + Duration::from_secs(20);
        let leaders = loop {
            if let Ok(l) = fetch_shards(&client_addrs, Duration::from_millis(500)) {
                if l.len() == shards && l.iter().all(|&p| p != 0) {
                    break l;
                }
            }
            assert!(
                Instant::now() < deadline,
                "routing never converged for {shards} shards"
            );
            std::thread::sleep(Duration::from_millis(50));
        };
        let distinct_leaders = leaders.iter().collect::<HashSet<_>>().len();

        let mut pipe = ShardedKvClient::bootstrap(
            0xBE9C6 + shards as u64,
            client_addrs.clone(),
            Duration::from_secs(5),
        )
        .expect("sharded client bootstrap");

        // Open loop with one admission window in flight per shard (keys
        // hash-spread over the shards); per-(shard, seq) exactly-once
        // audited as results drain. The submit gate is head-of-line: keys
        // cycle uniformly over the shards, so one full window means they
        // are all within a batch of full.
        let mut model: HashMap<String, i64> = HashMap::new();
        let mut value_counter = 0i64;
        let mut best: Option<ShardPoint> = None;
        for &per_shard_window in windows {
            // Size each segment to its aggregate window so the pipeline
            // spends most of the run full rather than ramping.
            let aggregate = per_shard_window * shards;
            let ops = (6 * aggregate).max(if quick { 12_000 } else { 48_000 }) as u64;
            let mut starts: HashMap<(u32, u64), Instant> = HashMap::new();
            let mut seen: HashSet<(u32, u64)> = HashSet::with_capacity(ops as usize);
            let mut per_shard_ops = vec![0u64; shards];
            let mut in_flight = vec![0usize; shards];
            let mut lat: Vec<f64> = Vec::with_capacity(ops as usize);
            let mut submitted = 0u64;
            let retries_before = pipe.retries_seen();
            let cpu0 = process_cpu_seconds();
            let start = Instant::now();
            // Each segment fully drains (seen == submitted == ops) before
            // the next starts, so completions never leak across segments.
            while (seen.len() as u64) < ops {
                let mut blocked = false;
                while submitted < ops {
                    let key = format!("k{}", submitted % 64);
                    if in_flight[kvstore::shard_of_key(&key, shards) as usize] >= per_shard_window {
                        blocked = true;
                        break;
                    }
                    value_counter += 1;
                    model.insert(key.clone(), value_counter);
                    let (shard, seq) = pipe.submit(KvOp::Put {
                        key,
                        value: value_counter,
                    });
                    in_flight[shard as usize] += 1;
                    starts.insert((shard, seq), Instant::now());
                    submitted += 1;
                }
                for (shard, r) in pipe.pump().expect("sharded pump") {
                    assert!(
                        seen.insert((shard, r.seq)),
                        "seq {} on shard {shard} completed twice",
                        r.seq
                    );
                    per_shard_ops[shard as usize] += 1;
                    in_flight[shard as usize] -= 1;
                    if let Some(t0) = starts.remove(&(shard, r.seq)) {
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                }
                if blocked || submitted >= ops {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            let elapsed = start.elapsed().as_secs_f64();
            let cpu_cores_busy = (process_cpu_seconds() - cpu0) / elapsed;
            lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let retries = pipe.retries_seen() - retries_before;
            let point = ShardPoint {
                shards,
                ops,
                elapsed,
                ops_sec: ops as f64 / elapsed,
                p50: percentile(&lat, 0.50),
                p99: percentile(&lat, 0.99),
                retries,
                per_shard_ops,
                distinct_leaders,
                cpu_cores_busy,
                window: per_shard_window,
            };
            println!(
                "  shards={:<2} window={:<5} {:>8.0} ops/sec  p50 {:>7.0}us  p99 {:>8.0}us  leaders={}  per-shard {:?}  ({} retries, {:.2} cores busy)",
                point.shards,
                point.window,
                point.ops_sec,
                point.p50,
                point.p99,
                point.distinct_leaders,
                point.per_shard_ops,
                point.retries,
                point.cpu_cores_busy
            );
            if best.as_ref().is_none_or(|b| point.ops_sec > b.ops_sec) {
                best = Some(point);
            }
        }

        // Linearizable audit through a routing-oblivious client (it
        // discovers per-shard leaders by chasing ShardRedirect).
        let mut audit = KvClient::new(0xAD17 + shards as u64, client_addrs.clone());
        for (k, v) in &model {
            assert_eq!(
                audit.read(k).expect("audit read"),
                Some(*v),
                "linearizable audit of {k} at {shards} shards"
            );
        }
        audit.put("sentinel", 1).expect("sentinel");
        std::thread::sleep(Duration::from_millis(500));

        stop.store(true, Ordering::SeqCst);
        let servers: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("node"))
            .collect();
        // Per-shard convergence, session tables included.
        for s in 0..shards as u32 {
            let sm0 = servers[0].node().shard(s).state_machine();
            assert!(
                servers[1..]
                    .iter()
                    .all(|sv| sv.node().shard(s).state_machine() == sm0),
                "shard {s} replicas must converge at {shards} shards"
            );
        }

        let best = best.expect("at least one window per shard count");
        println!(
            "  shards={:<2} peak {:>8.0} ops/sec at window {}/shard",
            best.shards, best.ops_sec, best.window
        );
        points.push(best);
    }

    let one = points
        .iter()
        .find(|p| p.shards == 1)
        .expect("1-shard point");
    let four = points
        .iter()
        .find(|p| p.shards == 4)
        .expect("4-shard point");
    let scaling = four.ops_sec / one.ops_sec;
    println!("  scaling 1 -> 4 shards: {scaling:.2}x");

    let sweep_json: Vec<String> = points
        .iter()
        .map(|p| {
            let per_shard: Vec<String> = p.per_shard_ops.iter().map(|n| n.to_string()).collect();
            format!(
                "    {{\n      \"shards\": {},\n      \"per_shard_window\": {},\n      \"ops\": {},\n      \"elapsed_s\": {:.3},\n      \"ops_per_sec\": {},\n      \"p50_us\": {},\n      \"p99_us\": {},\n      \"retries\": {},\n      \"distinct_leaders\": {},\n      \"cpu_cores_busy\": {:.2},\n      \"per_shard_ops\": [{}]\n    }}",
                p.shards,
                p.window,
                p.ops,
                p.elapsed,
                json_num(p.ops_sec),
                json_num(p.p50),
                json_num(p.p99),
                p.retries,
                p.distinct_leaders,
                p.cpu_cores_busy,
                per_shard.join(", ")
            )
        })
        .collect();
    let out = format!(
        "{{\n  \"bench\": \"net-sharded-open-loop\",\n  \"quick\": {quick},\n  \"replicas\": 3,\n  \"windows_swept\": [{}],\n  \"host_effective_cores\": {effective_cores:.2},\n  \"shard_sweep\": [\n{}\n  ],\n  \"scaling_1_to_4\": {scaling:.2},\n  \"checks\": {{\n    \"completions_exactly_once_per_shard\": 1,\n    \"final_reads_linearizable\": 1,\n    \"per_shard_replicas_converged\": 1,\n    \"routing_converged\": 1\n  }}\n}}\n",
        windows
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        sweep_json.join(",\n"),
    );
    std::fs::write("BENCH_PR7.json", &out).expect("write BENCH_PR7.json");
    print!("{out}");
}

/// `--reads`: the read-mode comparison. Boots the same 3-replica TCP
/// loopback cluster once per [`kvstore::ReadMode`] — leases enabled
/// cluster-wide — and drives a 95/5 read/write open-loop mix through a
/// pipelined client in that mode, sweeping the in-flight window and
/// keeping each mode's best point. `Log` reads ride the replicated log
/// (every read is a decided entry); `Lease` reads are answered from the
/// leader's local state machine while its lease holds; `ReadIndex` reads
/// capture the commit index and wait for local apply. The decided-log
/// length after each run is the log-free evidence: in the log-free modes
/// it grows with the writes only. Each mode self-audits exactly-once
/// completions, a final linearizable read-back of the client's model,
/// and replica convergence. Writes `BENCH_PR8.json` with the
/// lease-over-log throughput ratio that `check_bench.sh` gates on
/// (cores-conditional: a single-core host serializes the read path with
/// the replication threads, so the multiplier is only demanded when the
/// host can actually run them in parallel).
fn run_net_read_modes(quick: bool) {
    use kvstore::{shard_config, KvCommand, KvNode, KvOp, ReadMode, ShardedKvNode};
    use net::server::{ClientGateway, KvServer};
    use net::tcp::{TcpConfig, TcpTransport};
    use net::{KvClient, PipelinedKvClient};
    use omnipaxos::ServiceMsg;
    use std::collections::{HashMap, HashSet};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    type Transport = TcpTransport<ServiceMsg<KvCommand>>;

    println!("hotpath: read-mode sweep (3 replicas over TCP, 95/5 read/write)");

    struct ModePoint {
        mode: &'static str,
        window: usize,
        ops: u64,
        reads: u64,
        writes: u64,
        /// Writes across ALL windows of this mode's run — the decided log
        /// is measured once per mode, so the log-free check must compare
        /// against the whole run's writes, not the best point's.
        total_writes: u64,
        elapsed: f64,
        ops_sec: f64,
        read_p50: f64,
        read_p99: f64,
        write_p50: f64,
        write_p99: f64,
        retries: u64,
        decided_len: u64,
        cpu_cores_busy: f64,
    }

    let effective_cores = measure_effective_cores();
    println!("  host effective cores: {effective_cores:.2}");

    let modes: &[(ReadMode, &'static str)] = &[
        (ReadMode::Log, "log"),
        (ReadMode::Lease, "lease"),
        (ReadMode::ReadIndex, "read-index"),
    ];
    let windows: &[usize] = if quick {
        &[128, 1024]
    } else {
        &[256, 1024, 4096]
    };
    let members: Vec<u64> = vec![1, 2, 3];
    // Lease window in 3ms drive-loop ticks: 40 ticks ≈ 120ms, renewed
    // every TCP heartbeat — the same contract the loopback tests use.
    let lease_ticks = 40u64;
    let mut points: Vec<ModePoint> = Vec::new();
    let mut converged = true;

    for &(mode, mode_name) in modes {
        // Fresh cluster per mode so each run's decided-log length is
        // attributable to that mode alone.
        let mut listeners = HashMap::new();
        let mut repl_addrs = HashMap::new();
        for pid in 1..=3u64 {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind replication port");
            repl_addrs.insert(pid, l.local_addr().unwrap());
            listeners.insert(pid, l);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        let mut client_addrs = Vec::new();
        for pid in 1..=3u64 {
            let mut base = omnipaxos::ServerConfig::with(pid);
            base.lease_ticks = lease_ticks;
            base.lease_epsilon_ticks = (lease_ticks / 10).max(1);
            let node = ShardedKvNode::from_shards(vec![KvNode::with_config(
                shard_config(&base, 0, &members),
                members.clone(),
            )]);
            let transport = Transport::with_listener(
                pid,
                listeners.remove(&pid).unwrap(),
                repl_addrs.clone(),
                TcpConfig::default(),
            )
            .expect("transport");
            let gateway =
                ClientGateway::bind(TcpListener::bind("127.0.0.1:0").unwrap()).expect("gateway");
            client_addrs.push((pid, gateway.local_addr()));
            let server = KvServer::new_sharded(node, transport).with_gateway(gateway);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                server.run(Duration::from_millis(3), stop)
            }));
        }

        // Warmup: ride out the election, fill session caches, seed every
        // key the mix will read, then give the lease a window to form.
        let mut client = KvClient::new(0xBE9C7, client_addrs.clone());
        let mut model: HashMap<String, i64> = HashMap::new();
        for k in 0..64u64 {
            let key = format!("k{k}");
            client.put(&key, -1).expect("warmup put");
            model.insert(key, -1);
        }
        std::thread::sleep(Duration::from_millis(400));

        let mut pipe =
            PipelinedKvClient::new(0xBE9C8 + mode.discriminant() as u64, client_addrs.clone());
        pipe.read_mode = mode;
        let mut value_counter = 0i64;
        let mut best: Option<ModePoint> = None;
        let mut mode_writes = 0u64;
        for &window in windows {
            let ops: u64 = if quick {
                (window as u64 * 4).clamp(1_000, 8_000)
            } else {
                (window as u64 * 20).clamp(4_000, 60_000)
            };
            let retries_before = pipe.retries_seen();
            let mut read_lat: Vec<f64> = Vec::new();
            let mut write_lat: Vec<f64> = Vec::new();
            let mut starts: HashMap<u64, Instant> = HashMap::new();
            let mut read_tokens: HashSet<u64> = HashSet::new();
            let mut seen: HashSet<u64> = HashSet::with_capacity(ops as usize);
            let (mut reads, mut writes) = (0u64, 0u64);
            let mut submitted = 0u64;
            let cpu0 = process_cpu_seconds();
            let start = Instant::now();
            while (seen.len() as u64) < ops {
                while submitted < ops && pipe.in_flight() < window {
                    let key = format!("k{}", submitted % 64);
                    // 5% writes keep the log (and the lease's write path)
                    // warm while reads dominate the offered load.
                    let token = if submitted.is_multiple_of(20) {
                        value_counter += 1;
                        model.insert(key.clone(), value_counter);
                        writes += 1;
                        pipe.submit(KvOp::Put {
                            key,
                            value: value_counter,
                        })
                    } else {
                        reads += 1;
                        let t = pipe.submit_read(&key);
                        read_tokens.insert(t);
                        t
                    };
                    starts.insert(token, Instant::now());
                    submitted += 1;
                }
                for r in pipe
                    .wait(Duration::from_millis(50))
                    .expect("pipelined mix under sweep")
                {
                    assert!(seen.insert(r.seq), "token {} completed twice", r.seq);
                    assert!(r.applied, "op {} must apply in a healthy cluster", r.seq);
                    if let Some(t0) = starts.remove(&r.seq) {
                        let us = t0.elapsed().as_secs_f64() * 1e6;
                        if read_tokens.contains(&r.seq) {
                            read_lat.push(us);
                        } else {
                            write_lat.push(us);
                        }
                    }
                }
            }
            let elapsed = start.elapsed().as_secs_f64();
            let cpu_cores_busy = (process_cpu_seconds() - cpu0) / elapsed;
            mode_writes += writes;
            read_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
            write_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let point = ModePoint {
                mode: mode_name,
                window,
                ops,
                reads,
                writes,
                total_writes: 0,
                elapsed,
                ops_sec: ops as f64 / elapsed,
                read_p50: percentile(&read_lat, 0.50),
                read_p99: percentile(&read_lat, 0.99),
                write_p50: percentile(&write_lat, 0.50),
                write_p99: percentile(&write_lat, 0.99),
                retries: pipe.retries_seen() - retries_before,
                decided_len: 0,
                cpu_cores_busy,
            };
            println!(
                "  mode={:<10} w={:<5} {:>8.0} ops/sec  read p50 {:>6.0}us p99 {:>7.0}us  write p50 {:>6.0}us p99 {:>7.0}us  ({} retries, {:.2} cores busy)",
                point.mode,
                point.window,
                point.ops_sec,
                point.read_p50,
                point.read_p99,
                point.write_p50,
                point.write_p99,
                point.retries,
                point.cpu_cores_busy
            );
            if best.as_ref().is_none_or(|b| point.ops_sec > b.ops_sec) {
                best = Some(point);
            }
        }

        // Linearizable audit of the final model through the closed-loop
        // client, in the mode under test (lease/read-index audits take
        // the log-free path they are auditing).
        for (k, v) in &model {
            assert_eq!(
                client.read_with_mode(k, mode).expect("audit read"),
                Some(*v),
                "linearizable audit of {k} in mode {mode_name}"
            );
        }
        client.put("sentinel", 1).expect("sentinel");
        std::thread::sleep(Duration::from_millis(400));

        stop.store(true, Ordering::SeqCst);
        let servers: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("node"))
            .collect();
        let sm0 = servers[0].node().shard(0).state_machine();
        converged &= servers[1..]
            .iter()
            .all(|s| s.node().shard(0).state_machine() == sm0);
        assert!(converged, "replicas must converge after {mode_name} run");
        let mut best = best.expect("at least one window per mode");
        best.total_writes = mode_writes;
        best.decided_len = servers[0].node().shard(0).server_ref().decided_len();
        println!(
            "  mode={:<10} peak {:>8.0} ops/sec at w={} (decided log {} entries)",
            best.mode, best.ops_sec, best.window, best.decided_len
        );
        points.push(best);
    }

    let by = |name: &str| points.iter().find(|p| p.mode == name).expect("mode point");
    let (log, lease, ri) = (by("log"), by("lease"), by("read-index"));
    let lease_over_log = lease.ops_sec / log.ops_sec;
    let read_index_over_log = ri.ops_sec / log.ops_sec;
    println!("  lease/log: {lease_over_log:.2}x   read-index/log: {read_index_over_log:.2}x");
    // Log-free evidence: in lease / read-index mode the decided log
    // grows with the run's writes (plus warmup, sessions, sentinel),
    // never with the reads. The decided log is cumulative over every
    // swept window, so the bound uses the mode's total writes. A lease
    // implementation quietly falling through to the log path on every
    // read fails this, whatever its throughput.
    let slack = 300u64;
    let lease_log_free = lease.decided_len < lease.total_writes + slack;
    let read_index_log_free = ri.decided_len < ri.total_writes + slack;
    assert!(
        log.decided_len > log.total_writes + slack,
        "log-mode reads must ride the replicated log"
    );

    let mode_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"mode\": \"{}\",\n      \"in_flight\": {},\n      \"ops\": {},\n      \"reads\": {},\n      \"writes\": {},\n      \"total_writes\": {},\n      \"elapsed_s\": {:.3},\n      \"ops_per_sec\": {},\n      \"read_p50_us\": {},\n      \"read_p99_us\": {},\n      \"write_p50_us\": {},\n      \"write_p99_us\": {},\n      \"retries\": {},\n      \"decided_log_entries\": {},\n      \"cpu_cores_busy\": {:.2}\n    }}",
                p.mode,
                p.window,
                p.ops,
                p.reads,
                p.writes,
                p.total_writes,
                p.elapsed,
                json_num(p.ops_sec),
                json_num(p.read_p50),
                json_num(p.read_p99),
                json_num(p.write_p50),
                json_num(p.write_p99),
                p.retries,
                p.decided_len,
                p.cpu_cores_busy
            )
        })
        .collect();
    let out = format!(
        "{{\n  \"bench\": \"net-read-modes\",\n  \"quick\": {quick},\n  \"replicas\": 3,\n  \"read_fraction\": 0.95,\n  \"lease_ticks\": {lease_ticks},\n  \"windows_swept\": [{}],\n  \"host_effective_cores\": {effective_cores:.2},\n  \"mode_sweep\": [\n{}\n  ],\n  \"lease_over_log\": {lease_over_log:.2},\n  \"read_index_over_log\": {read_index_over_log:.2},\n  \"checks\": {{\n    \"completions_exactly_once\": 1,\n    \"final_reads_linearizable\": 1,\n    \"replicas_converged\": {},\n    \"lease_reads_log_free\": {},\n    \"read_index_reads_log_free\": {}\n  }}\n}}\n",
        windows
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        mode_json.join(",\n"),
        converged as u8,
        lease_log_free as u8,
        read_index_log_free as u8,
    );
    std::fs::write("BENCH_PR8.json", &out).expect("write BENCH_PR8.json");
    print!("{out}");
}

/// `--txn-mix`: the transactional mixed workload. Boots one 3-replica,
/// 4-shard TCP loopback cluster and drives an 80/15/5 put/cas/transfer
/// open loop through a [`net::ShardedKvClient`], with every transfer a
/// *cross-shard* pair (account pairs are pre-filtered so each rides the
/// 2PC coordinator, never the single-entry same-shard fast path). The
/// per-shard in-flight window is swept and the best point kept, with
/// separate latency percentiles per op class — a 2PC transfer costs
/// several log entries across two shards plus coordinator round trips,
/// so folding it into one histogram would hide both its cost and the
/// fast path's. Every outcome is predicted and audited: CAS verdicts
/// are checked against a client-side model (a quarter of them are
/// submitted with a deliberately stale `expect` and must report
/// `applied = false` with the actual value), transfer commit verdicts
/// accumulate into expected per-account balances (deltas commute, so
/// the final balance is exact whatever the commit order), and the run
/// ends with a linearizable read-back of every key, a total-balance
/// conservation check, and per-shard replica convergence. Writes
/// `BENCH_PR9.json`.
fn run_net_txn_mix(quick: bool) {
    use kvstore::{KvCommand, KvOp, ShardedKvNode};
    use net::server::{ClientGateway, KvServer};
    use net::tcp::{TcpConfig, TcpTransport};
    use net::{fetch_shards, KvClient, ShardedKvClient};
    use omnipaxos::ServiceMsg;
    use std::collections::{HashMap, HashSet};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    type Transport = TcpTransport<ServiceMsg<KvCommand>>;

    const SHARDS: usize = 4;
    const ACCOUNTS: usize = 512;
    const OPENING: i64 = 1_000;

    println!("hotpath: txn mix (3 replicas over TCP, {SHARDS} shards, 80/15/5 put/cas/transfer)");

    let mut listeners = HashMap::new();
    let mut repl_addrs = HashMap::new();
    for pid in 1..=3u64 {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind replication port");
        repl_addrs.insert(pid, l.local_addr().unwrap());
        listeners.insert(pid, l);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    let mut client_addrs = Vec::new();
    for pid in 1..=3u64 {
        let transport = Transport::with_listener(
            pid,
            listeners.remove(&pid).unwrap(),
            repl_addrs.clone(),
            TcpConfig::default(),
        )
        .expect("transport");
        let gateway =
            ClientGateway::bind(TcpListener::bind("127.0.0.1:0").unwrap()).expect("gateway");
        client_addrs.push((pid, gateway.local_addr()));
        let node = ShardedKvNode::new(pid, vec![1, 2, 3], SHARDS);
        let server = KvServer::new_sharded(node, transport).with_gateway(gateway);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            server.run(Duration::from_millis(3), stop)
        }));
    }

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(l) = fetch_shards(&client_addrs, Duration::from_millis(500)) {
            if l.len() == SHARDS && l.iter().all(|&p| p != 0) {
                break;
            }
        }
        assert!(Instant::now() < deadline, "routing never converged");
        std::thread::sleep(Duration::from_millis(50));
    }

    let effective_cores = measure_effective_cores();
    println!("  host effective cores: {effective_cores:.2}");

    // Account pairs whose endpoints hash to *different* shards: the only
    // pairs the workload draws from, so every transfer is a real 2PC.
    let accounts: Vec<String> = (0..ACCOUNTS).map(|i| format!("acct{i}")).collect();
    let acct_shard: Vec<u32> = accounts
        .iter()
        .map(|a| kvstore::shard_of_key(a, SHARDS))
        .collect();
    assert!(
        acct_shard.iter().any(|&s| s != acct_shard[0]),
        "accounts must span at least two shards"
    );
    // The t-th transfer's endpoints: stride 13 (coprime to the account
    // count) walks `from` across every account so consecutive in-flight
    // transfers never pile onto one account's lock, and `to` probes
    // forward to the next account on a different shard.
    let pick_pair = |t: usize| -> (usize, usize) {
        let from = (t * 13) % ACCOUNTS;
        let mut to = (from + 1 + (t % (ACCOUNTS - 1))) % ACCOUNTS;
        while to == from || acct_shard[to] == acct_shard[from] {
            to = (to + 1) % ACCOUNTS;
        }
        (from, to)
    };

    let mut pipe =
        ShardedKvClient::bootstrap(0x9BE9C, client_addrs.clone(), Duration::from_secs(5))
            .expect("sharded client bootstrap");

    // Fund the accounts before measuring.
    for a in &accounts {
        pipe.submit(KvOp::Put {
            key: a.clone(),
            value: OPENING,
        });
    }
    pipe.drain(Duration::from_secs(10)).expect("funding drain");

    struct MixPoint {
        window: usize,
        ops: u64,
        puts: u64,
        cas_ops: u64,
        transfers: u64,
        elapsed: f64,
        ops_sec: f64,
        put_p50: f64,
        put_p99: f64,
        cas_p50: f64,
        cas_p99: f64,
        txn_p50: f64,
        txn_p99: f64,
        retries: u64,
        cpu_cores_busy: f64,
    }
    let windows: &[usize] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 4096]
    };
    assert!(windows
        .iter()
        .all(|&w| w <= net::server::DEFAULT_MAX_PENDING));

    // Cross-window accumulators: the model and the expected balances are
    // cumulative (the cluster keeps its state between windows), as are
    // the transfer commit/abort counts reported in the JSON.
    let mut model: HashMap<String, i64> = HashMap::new();
    let mut expected_bal: Vec<i64> = vec![OPENING; ACCOUNTS];
    let mut value_counter = 0i64;
    let mut committed_total = 0u64;
    let mut aborted_total = 0u64;
    let mut cas_conflicts = 0u64;
    let mut cas_verdicts_ok = true;
    let mut best: Option<MixPoint> = None;

    for &per_shard_window in windows {
        let aggregate = per_shard_window * SHARDS;
        let ops = (4 * aggregate).max(if quick { 8_000 } else { 40_000 }) as u64;
        // Op class and latency bucket: 0 = put, 1 = cas, 2 = transfer.
        let mut starts: HashMap<(u32, u64), (Instant, usize)> = HashMap::new();
        let mut seen: HashSet<(u32, u64)> = HashSet::with_capacity(ops as usize);
        let mut in_flight = [0usize; SHARDS];
        let mut lat: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut counts = [0u64; 3];
        // Predicted CAS verdict per token; committed-transfer bookkeeping.
        let mut cas_expect: HashMap<(u32, u64), bool> = HashMap::new();
        let mut txn_info: HashMap<(u32, u64), (usize, usize, i64)> = HashMap::new();
        let mut submitted = 0u64;
        let mut txn_in_flight = 0usize;
        // Concurrent-transaction bound: a 2PC transfer locks both
        // accounts for its whole prepare→resolve window, so an unbounded
        // 5% of a deep pipeline (hundreds of concurrent transfers) would
        // conflict-abort almost everything it touches. Real transactional
        // clients bound their open transactions; so does the bench — the
        // 80/15/5 totals stay exact, transfers just trickle at the cap
        // while puts and cas fill the pipe.
        const TXN_CAP: usize = 16;
        let txn_quota = ops / 20;
        let cas_quota = 3 * ops / 20;
        let put_quota = ops - txn_quota - cas_quota;
        let retries_before = pipe.retries_seen();
        let cpu0 = process_cpu_seconds();
        let start = Instant::now();
        while (seen.len() as u64) < ops {
            let mut blocked = false;
            while submitted < ops {
                // Pacing: a class is due when its submitted share has
                // fallen behind its target fraction. A transfer due while
                // the cap is full yields its slot to the other classes
                // and catches up later.
                let txn_due = counts[2] < txn_quota && counts[2] * 20 <= submitted;
                let cas_due = counts[1] < cas_quota && counts[1] * 20 <= 3 * submitted;
                let cls = if txn_due && txn_in_flight < TXN_CAP {
                    2
                } else if cas_due || (counts[0] >= put_quota && counts[1] < cas_quota) {
                    1
                } else if counts[0] < put_quota {
                    0
                } else if counts[1] < cas_quota {
                    1
                } else {
                    // Only transfers remain and the cap is full: wait for
                    // completions to free transaction slots.
                    blocked = true;
                    break;
                };
                let (shard, token) = if cls == 2 {
                    let (from, to) = pick_pair(counts[2] as usize);
                    // Every 16th transfer asks for more money than the
                    // whole bank holds: a guaranteed abort, so the abort
                    // path is always exercised and counted.
                    let amount = if counts[2] % 16 == 15 {
                        ACCOUNTS as i64 * OPENING + 1
                    } else {
                        1 + (counts[2] % 50) as i64
                    };
                    let coord = acct_shard[from].min(acct_shard[to]);
                    if in_flight[coord as usize] >= per_shard_window {
                        blocked = true;
                        break;
                    }
                    let (shard, token) = pipe.transfer(&accounts[from], &accounts[to], amount);
                    assert_eq!(shard, coord, "transfer must land on its coordinator shard");
                    txn_info.insert((shard, token), (from, to, amount));
                    txn_in_flight += 1;
                    (shard, token)
                } else {
                    let key = format!("k{}", (counts[0] + counts[1]) % 64);
                    let shard = kvstore::shard_of_key(&key, SHARDS);
                    if in_flight[shard as usize] >= per_shard_window {
                        blocked = true;
                        break;
                    }
                    value_counter += 1;
                    if cls == 1 {
                        // A quarter of the CAS ops carry a deliberately
                        // stale expectation and must lose.
                        let cur = model.get(&key).copied();
                        let stale = counts[1] % 4 == 0;
                        let expect = if stale {
                            Some(cur.unwrap_or(0) + 1_000_000)
                        } else {
                            cur
                        };
                        let (s, seq) = pipe.submit(KvOp::Cas {
                            key: key.clone(),
                            expect,
                            set: Some(value_counter),
                        });
                        if !stale {
                            model.insert(key, value_counter);
                        }
                        cas_expect.insert((s, seq), !stale);
                        (s, seq)
                    } else {
                        model.insert(key.clone(), value_counter);
                        pipe.submit(KvOp::Put {
                            key,
                            value: value_counter,
                        })
                    }
                };
                counts[cls] += 1;
                in_flight[shard as usize] += 1;
                starts.insert((shard, token), (Instant::now(), cls));
                submitted += 1;
            }
            for (shard, r) in pipe.pump().expect("txn-mix pump") {
                assert!(
                    seen.insert((shard, r.seq)),
                    "token {} on shard {shard} completed twice",
                    r.seq
                );
                in_flight[shard as usize] -= 1;
                if let Some((t0, cls)) = starts.remove(&(shard, r.seq)) {
                    lat[cls].push(t0.elapsed().as_secs_f64() * 1e6);
                }
                if let Some(expect_applied) = cas_expect.remove(&(shard, r.seq)) {
                    if r.applied != expect_applied {
                        cas_verdicts_ok = false;
                    }
                    if !r.applied {
                        cas_conflicts += 1;
                    }
                }
                if let Some((from, to, amount)) = txn_info.remove(&(shard, r.seq)) {
                    txn_in_flight -= 1;
                    if r.applied {
                        committed_total += 1;
                        expected_bal[from] -= amount;
                        expected_bal[to] += amount;
                    } else {
                        aborted_total += 1;
                    }
                }
            }
            if blocked || submitted >= ops {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let cpu_cores_busy = (process_cpu_seconds() - cpu0) / elapsed;
        for l in &mut lat {
            l.sort_by(|a, b| a.partial_cmp(b).unwrap());
        }
        let retries = pipe.retries_seen() - retries_before;
        let point = MixPoint {
            window: per_shard_window,
            ops,
            puts: counts[0],
            cas_ops: counts[1],
            transfers: counts[2],
            elapsed,
            ops_sec: ops as f64 / elapsed,
            put_p50: percentile(&lat[0], 0.50),
            put_p99: percentile(&lat[0], 0.99),
            cas_p50: percentile(&lat[1], 0.50),
            cas_p99: percentile(&lat[1], 0.99),
            txn_p50: percentile(&lat[2], 0.50),
            txn_p99: percentile(&lat[2], 0.99),
            retries,
            cpu_cores_busy,
        };
        println!(
            "  window={:<5} {:>8.0} ops/sec  put p50 {:>6.0}us  cas p50 {:>6.0}us  2pc p50 {:>7.0}us p99 {:>8.0}us  ({} retries, {:.2} cores busy)",
            point.window,
            point.ops_sec,
            point.put_p50,
            point.cas_p50,
            point.txn_p50,
            point.txn_p99,
            point.retries,
            point.cpu_cores_busy
        );
        if best.as_ref().is_none_or(|b| point.ops_sec > b.ops_sec) {
            best = Some(point);
        }
    }
    assert!(
        pipe.take_cross_shard_rejections().is_empty(),
        "no workload op may span shards at the gateway"
    );
    assert!(committed_total > 0, "some transfers must commit");
    assert!(
        aborted_total > 0,
        "the guaranteed-abort transfers must abort"
    );
    assert!(cas_verdicts_ok, "every CAS verdict must match the model");

    // Linearizable read-back of every key through a routing-oblivious
    // client, plus the conservation audit: committed deltas commute, so
    // each account must hold exactly its expected balance and the bank's
    // total must still be ACCOUNTS * OPENING.
    let mut audit = KvClient::new(0x9AD17, client_addrs.clone());
    for (k, v) in &model {
        assert_eq!(
            audit.read(k).expect("audit read"),
            Some(*v),
            "linearizable audit of {k}"
        );
    }
    // A transfer's outcome is reported the moment its decision record is
    // durable, but the participant-side commit records that move the
    // money may still be applying — poll until the balances settle.
    let deadline = Instant::now() + Duration::from_secs(10);
    let (mut total, mut settled) = (0i64, false);
    while !settled {
        total = 0;
        settled = true;
        for (i, a) in accounts.iter().enumerate() {
            let bal = audit
                .read(a)
                .expect("balance read")
                .expect("account exists");
            if bal != expected_bal[i] {
                settled = false;
            }
            total += bal;
        }
        if settled || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    if !settled {
        let actual: Vec<i64> = accounts
            .iter()
            .map(|a| audit.read(a).unwrap().unwrap())
            .collect();
        panic!(
            "accounts never settled to the committed-transfer balances:\n\
             expected {expected_bal:?}\n\
             actual   {actual:?}"
        );
    }
    let conserved = total == ACCOUNTS as i64 * OPENING;
    assert!(conserved, "total balance drifted: {total}");
    audit.put("sentinel", 1).expect("sentinel");
    std::thread::sleep(Duration::from_millis(500));

    stop.store(true, Ordering::SeqCst);
    let servers: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("node"))
        .collect();
    for s in 0..SHARDS as u32 {
        let sm0 = servers[0].node().shard(s).state_machine();
        assert!(
            servers[1..]
                .iter()
                .all(|sv| sv.node().shard(s).state_machine() == sm0),
            "shard {s} replicas must converge"
        );
    }

    let best = best.expect("at least one window");
    println!(
        "  peak {:>8.0} ops/sec at window {}/shard  ({} committed / {} aborted transfers, {} cas conflicts)",
        best.ops_sec, best.window, committed_total, aborted_total, cas_conflicts
    );

    let out = format!(
        "{{\n  \"bench\": \"net-txn-mix\",\n  \"quick\": {quick},\n  \"replicas\": 3,\n  \"shards\": {SHARDS},\n  \"accounts\": {ACCOUNTS},\n  \"opening_balance\": {OPENING},\n  \"mix\": {{\n    \"put\": 0.80,\n    \"cas\": 0.15,\n    \"transfer\": 0.05\n  }},\n  \"windows_swept\": [{}],\n  \"host_effective_cores\": {effective_cores:.2},\n  \"best\": {{\n    \"per_shard_window\": {},\n    \"ops\": {},\n    \"puts\": {},\n    \"cas_ops\": {},\n    \"transfers\": {},\n    \"elapsed_s\": {:.3},\n    \"ops_per_sec\": {},\n    \"put_p50_us\": {},\n    \"put_p99_us\": {},\n    \"cas_p50_us\": {},\n    \"cas_p99_us\": {},\n    \"txn_p50_us\": {},\n    \"txn_p99_us\": {},\n    \"retries\": {},\n    \"cpu_cores_busy\": {:.2}\n  }},\n  \"transfers_committed\": {committed_total},\n  \"transfers_aborted\": {aborted_total},\n  \"cas_conflicts\": {cas_conflicts},\n  \"checks\": {{\n    \"completions_exactly_once\": 1,\n    \"cas_verdicts_match_model\": {},\n    \"transfer_balances_conserved\": {},\n    \"final_reads_linearizable\": 1,\n    \"per_shard_replicas_converged\": 1,\n    \"no_cross_shard_rejections\": 1\n  }}\n}}\n",
        windows
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        best.window,
        best.ops,
        best.puts,
        best.cas_ops,
        best.transfers,
        best.elapsed,
        json_num(best.ops_sec),
        json_num(best.put_p50),
        json_num(best.put_p99),
        json_num(best.cas_p50),
        json_num(best.cas_p99),
        json_num(best.txn_p50),
        json_num(best.txn_p99),
        best.retries,
        best.cpu_cores_busy,
        cas_verdicts_ok as u8,
        conserved as u8,
    );
    std::fs::write("BENCH_PR9.json", &out).expect("write BENCH_PR9.json");
    print!("{out}");
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

/// `--catchup`: snapshot-first catch-up vs full-log replay, written to
/// `BENCH_PR2.json`. Separate from the default run so the PR 1 numbers in
/// `BENCH_PR1.json` stay reproducible with the same invocation.
fn run_catchup(quick: bool) {
    let size: u64 = if quick { 20_000 } else { 100_000 };
    let reps = if quick { 1 } else { 5 };
    let best = |label: &str, runs: &mut dyn FnMut() -> (f64, f64)| -> (f64, f64) {
        let mut best = (f64::INFINITY, 0.0);
        for i in 0..reps {
            let (s, eps) = runs();
            println!("  {label} run {i}: {:.3}ms  {eps:.0} entries/sec", s * 1e3);
            if s < best.0 {
                best = (s, eps);
            }
        }
        best
    };

    println!("hotpath: catchup via full log replay ({size} entries, 3 servers)");
    let (replay_s, replay_eps) = best("replay", &mut || bench_catchup(size, false));
    println!("hotpath: catchup snapshot-first (trimmed {size}-entry log)");
    let (snap_s, snap_eps) = best("snapshot", &mut || bench_catchup(size, true));

    let speedup = replay_s / snap_s;
    let out = format!(
        "{{\n  \"bench\": \"catchup\",\n  \"quick\": {quick},\n  \"log_entries\": {size},\n  \"full_log_replay\": {{\n    \"elapsed_s\": {replay_s:.6},\n    \"entries_per_sec\": {}\n  }},\n  \"snapshot_first\": {{\n    \"elapsed_s\": {snap_s:.6},\n    \"entries_per_sec\": {},\n    \"snapshot_bytes\": 16,\n    \"tail_entries\": 0\n  }},\n  \"speedup\": {speedup:.2}\n}}\n",
        json_num(replay_eps),
        json_num(snap_eps),
    );
    std::fs::write("BENCH_PR2.json", &out).expect("write BENCH_PR2.json");
    print!("{out}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--catchup") {
        run_catchup(quick);
        return;
    }
    if args.iter().any(|a| a == "--reads") {
        run_net_read_modes(quick);
        return;
    }
    if args.iter().any(|a| a == "--txn-mix") {
        run_net_txn_mix(quick);
        return;
    }
    if args.iter().any(|a| a == "--net-loopback") {
        if args.iter().any(|a| a == "--shards") {
            run_net_sharded(quick);
        } else {
            run_net_loopback(quick);
        }
        return;
    }
    let baseline: Option<(f64, f64)> = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| {
            let (a, b) = s.split_once(',')?;
            Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
        });

    let (repl_total, repl_batch) = if quick {
        (100_000, 4_096)
    } else {
        (2_000_000, 4_096)
    };
    let mig_size: u64 = if quick { 500_000 } else { 5_000_000 };
    let reps = if quick { 1 } else { 5 };

    // Best-of-N: the machine hosting the benchmark may be noisy; the
    // fastest run is the least-perturbed measurement of the code itself.
    let best = |label: &str, runs: &mut dyn FnMut() -> (f64, f64)| -> (f64, f64) {
        let mut best = (f64::INFINITY, 0.0);
        for i in 0..reps {
            let (s, eps) = runs();
            println!("  {label} run {i}: {s:.3}s  {eps:.0} entries/sec");
            if s < best.0 {
                best = (s, eps);
            }
        }
        best
    };

    println!("hotpath: replication ({repl_total} entries, 5 servers, batch {repl_batch})");
    let (repl_s, repl_eps) = best("replication", &mut || {
        bench_replication(repl_total, repl_batch)
    });

    println!("hotpath: migration ({mig_size} entries, replace-majority, 3 joiners)");
    let (mig_s, mig_eps) = best("migration", &mut || bench_migration(mig_size));

    let (speedup_repl, speedup_mig) = match baseline {
        Some((br, bm)) => (repl_eps / br, mig_eps / bm),
        None => (f64::NAN, f64::NAN),
    };
    let (base_repl, base_mig) = baseline.unwrap_or((f64::NAN, f64::NAN));
    let out = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"quick\": {quick},\n  \"replication_5servers\": {{\n    \"entries\": {repl_total},\n    \"elapsed_s\": {repl_s:.3},\n    \"entries_per_sec\": {},\n    \"baseline_entries_per_sec\": {},\n    \"speedup\": {}\n  }},\n  \"migration_replace_majority\": {{\n    \"log_entries\": {mig_size},\n    \"joiners\": 3,\n    \"donors\": 5,\n    \"elapsed_s\": {mig_s:.3},\n    \"entries_per_sec\": {},\n    \"baseline_entries_per_sec\": {},\n    \"speedup\": {}\n  }}\n}}\n",
        json_num(repl_eps),
        json_num(base_repl),
        if speedup_repl.is_finite() { format!("{speedup_repl:.2}") } else { "null".into() },
        json_num(mig_eps),
        json_num(base_mig),
        if speedup_mig.is_finite() { format!("{speedup_mig:.2}") } else { "null".into() },
    );
    std::fs::write("BENCH_PR1.json", &out).expect("write BENCH_PR1.json");
    print!("{out}");
}

/// Whole-process CPU seconds (utime + stime) from `/proc/self/stat`, for
/// the per-point saturation evidence in the sharded sweep. Returns 0 on
/// non-Linux hosts, which simply records `cpu_cores_busy: 0.00`.
fn process_cpu_seconds() -> f64 {
    let st = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // utime/stime are the 2nd and 3rd fields after the parenthesized comm
    // (which may itself contain spaces), counting from state.
    let rest = &st[st.rfind(')').map(|i| i + 2).unwrap_or(0)..];
    let f: Vec<&str> = rest.split_whitespace().collect();
    let ticks = f.get(11).and_then(|v| v.parse::<f64>().ok()).unwrap_or(0.0)
        + f.get(12).and_then(|v| v.parse::<f64>().ok()).unwrap_or(0.0);
    ticks / 100.0 // USER_HZ
}

/// How many cores of fixed CPU work this process can actually run in
/// parallel — `nproc` lies under cgroup quotas, so measure: the same
/// spin-work once on one thread and once on four, compared by wall time.
/// A host pinned to one core returns ~1.0 no matter what `nproc` says.
fn measure_effective_cores() -> f64 {
    const WORK: u64 = 200_000_000;
    fn burn() -> u64 {
        let mut x = 1u64;
        for _ in 0..WORK {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        x
    }
    let t0 = Instant::now();
    std::hint::black_box(burn());
    let serial = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let hs: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(|| std::hint::black_box(burn())))
        .collect();
    for h in hs {
        let _ = h.join();
    }
    let parallel = t0.elapsed().as_secs_f64();
    (4.0 * serial / parallel.max(1e-9)).clamp(0.0, 4.0)
}
