//! Regenerate **Figure 8** of the paper: resilience to partial
//! connectivity.
//!
//! * 8a — down-time in the quorum-loss scenario per election timeout;
//!   protocols that never recover sit on the "deadlock" line.
//! * 8b — down-time in the constrained-election scenario.
//! * 8c — decided requests in the chained scenario per partition duration.
//!
//! Usage:
//!   `cargo run -p bench --bin fig8 --release [-- quorum-loss|constrained|chained] [--quick]`

use bench::{fmt_secs, print_header, quick_mode, row, seeds, summarize};
use cluster::protocol::ProtocolKind;
use cluster::scenarios::{partition_run, Scenario};
use simulator::{ms, sec, SimTime};

/// Election timeouts swept (scaled from the paper's {50 ms, 500 ms, 50 s}).
const TIMEOUTS: [SimTime; 3] = [ms(10), ms(50), ms(500)];

fn main() {
    let which: Vec<Scenario> = match std::env::args().nth(1).as_deref() {
        Some("quorum-loss") => vec![Scenario::QuorumLoss],
        Some("constrained") => vec![Scenario::ConstrainedElection],
        Some("chained") => vec![Scenario::Chained],
        _ => vec![
            Scenario::QuorumLoss,
            Scenario::ConstrainedElection,
            Scenario::Chained,
        ],
    };
    for scenario in which {
        match scenario {
            Scenario::Chained => chained(),
            s => downtime_figure(s),
        }
    }
}

/// Figures 8a/8b: down-time per election timeout.
fn downtime_figure(scenario: Scenario) {
    let partition = if quick_mode() { sec(6) } else { sec(12) };
    println!(
        "# Figure 8{} — {} scenario: down-time vs election timeout\n",
        if scenario == Scenario::QuorumLoss {
            "a"
        } else {
            "b"
        },
        scenario.name()
    );
    println!(
        "(partition length {}, seeds {:?})\n",
        fmt_secs(partition),
        seeds()
    );
    print_header(&[
        "Protocol    ",
        "timeout 10ms",
        "timeout 50ms",
        "timeout 500ms",
        "outcome",
    ]);
    for protocol in ProtocolKind::partition_lineup() {
        let mut cells = vec![protocol.name().to_string()];
        let mut recovered_all = true;
        for timeout in TIMEOUTS {
            let samples: Vec<f64> = seeds()
                .into_iter()
                .map(|seed| {
                    let o = partition_run(protocol, scenario, timeout, partition, seed);
                    recovered_all &= o.recovered_during_partition;
                    o.downtime_us as f64
                })
                .collect();
            let s = summarize(&samples);
            cells.push(format!("{:8.3}s ± {:6.3}", s.mean / 1e6, s.ci95 / 1e6));
        }
        cells.push(if recovered_all {
            "recovers".into()
        } else {
            "DEADLOCK (down for the whole partition)".into()
        });
        println!("{}", row(&cells));
    }
    println!();
}

/// Figure 8c: decided requests in the chained scenario per duration.
fn chained() {
    let timeout = ms(50);
    let durations: &[SimTime] = if quick_mode() {
        &[sec(6)]
    } else {
        &[sec(10), sec(20), sec(40)]
    };
    println!("# Figure 8c — chained scenario: decided requests during the partition\n");
    println!(
        "(election timeout {}, seeds {:?})\n",
        fmt_secs(timeout),
        seeds()
    );
    let mut header = vec!["Protocol    ".to_string()];
    for d in durations {
        header.push(format!("partition {}s", d / sec(1)));
    }
    header.push("leader changes".into());
    header.push("final term/ballot".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_header(&header_refs);
    for protocol in ProtocolKind::partition_lineup() {
        let mut cells = vec![protocol.name().to_string()];
        let mut max_changes = 0u64;
        let mut max_rank = 0u64;
        for &duration in durations {
            let samples: Vec<f64> = seeds()
                .into_iter()
                .map(|seed| {
                    let o = partition_run(protocol, Scenario::Chained, timeout, duration, seed);
                    max_changes = max_changes.max(o.leader_changes);
                    max_rank = max_rank.max(o.final_rank);
                    o.decided_during as f64
                })
                .collect();
            let s = summarize(&samples);
            cells.push(format!("{:9.0} ± {:6.0}", s.mean, s.ci95));
        }
        cells.push(format!("{max_changes}"));
        cells.push(format!("{max_rank}"));
        println!("{}", row(&cells));
    }
    println!(
        "\nPaper's claims: Multi-Paxos livelocks (repeated leader changes, up \
         to 30% fewer decided requests); Raft recovers with inflated terms and \
         variance; Raft PV+CQ performs no leader change; Omni-Paxos performs \
         exactly one."
    );
}
