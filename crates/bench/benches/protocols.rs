//! Plain timing benchmarks — one section per paper table/figure plus micro
//! benches and the parallel-migration ablation.
//!
//! These are *performance* benches of the reproduction itself (engine
//! throughput, recovery latency, migration speed). The paper-shaped
//! numbers are produced by the `table1`/`fig7`/`fig8`/`fig9` binaries; the
//! benches keep regressions visible while staying fast enough for CI.
//!
//! This uses a dependency-free harness (`harness = false` + `Instant`)
//! instead of criterion so the workspace builds offline. Run with
//! `cargo bench -p bench` or `cargo bench -p bench -- --quick`.

use std::hint::black_box;
use std::time::Instant;

use cluster::client::ClientConfig;
use cluster::protocol::ProtocolKind;
use cluster::runner::{Action, RunConfig, Runner};
use cluster::scenarios::{partition_run, Scenario};
use omnipaxos::{
    BallotLeaderElection, BleConfig, MemoryStorage, OmniPaxos, OmniPaxosConfig, Storage,
};
use simulator::{ms, sec};

/// Time `iters` runs of `f`, reporting mean wall-clock per iteration.
fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    // One warmup iteration, excluded from timing.
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<44} {per_iter:>12.2?}/iter  ({iters} iters)");
}

fn iters(quick: bool, normal: u32) -> u32 {
    if quick {
        1
    } else {
        normal
    }
}

/// Fig. 7 counterpart: decided commands per simulated second, per protocol.
fn normal_execution(quick: bool) {
    for protocol in [
        ProtocolKind::OmniPaxos,
        ProtocolKind::Raft,
        ProtocolKind::MultiPaxos,
        ProtocolKind::Vr,
    ] {
        bench(
            &format!("normal_execution/{}", protocol.name()),
            iters(quick, 3),
            || {
                let config = RunConfig {
                    protocol,
                    n: 3,
                    client: ClientConfig {
                        cp: 500,
                        entry_size: 8,
                        max_inject_per_tick: 500,
                        retry_ticks: 500,
                    },
                    duration: sec(1),
                    ..Default::default()
                };
                let report = Runner::new(config).run();
                report.total_decided
            },
        );
    }
}

/// Fig. 8 counterpart: recovery from the quorum-loss partition.
fn partition_recovery(quick: bool) {
    for (name, protocol) in [
        ("omni-paxos", ProtocolKind::OmniPaxos),
        ("raft-pv-cq", ProtocolKind::RaftPvCq),
    ] {
        bench(
            &format!("partition_recovery/{name}"),
            iters(quick, 3),
            || {
                let o = partition_run(protocol, Scenario::QuorumLoss, ms(20), sec(2), 3);
                o.downtime_us
            },
        );
    }
}

/// Fig. 9 / §6.1 ablation: parallel vs leader-only log migration. The
/// measured quantity is a whole short reconfiguration run.
fn reconfiguration_migration(quick: bool) {
    for (name, protocol) in [
        ("parallel", ProtocolKind::OmniPaxos),
        ("leader-only", ProtocolKind::OmniPaxosLeaderMigration),
        ("raft-leader-driven", ProtocolKind::Raft),
    ] {
        bench(
            &format!("reconfiguration_migration/{name}"),
            iters(quick, 3),
            || {
                let config = RunConfig {
                    protocol,
                    n: 5,
                    joiners: 1,
                    client: ClientConfig {
                        cp: 500,
                        entry_size: 8,
                        max_inject_per_tick: 50,
                        retry_ticks: 500,
                    },
                    election_timeout_us: ms(20),
                    nic_bytes_per_sec: Some(25_000_000),
                    duration: sec(8),
                    initial_log: 50_000,
                    initial_entry_size: 160,
                    window_us: sec(1),
                    schedule: vec![(sec(2), Action::Reconfigure(vec![2, 3, 4, 5, 6]))],
                    ..Default::default()
                };
                let report = Runner::new(config).run();
                report.reconfig_done_at
            },
        );
    }
}

/// Micro: Sequence Paxos replication throughput without the network
/// harness — three replicas driven directly.
fn sequence_paxos_micro(quick: bool) {
    bench("sequence_paxos_replicate_10k", iters(quick, 10), || {
        let nodes = vec![1u64, 2, 3];
        let mut replicas: Vec<OmniPaxos<u64, MemoryStorage<u64>>> = nodes
            .iter()
            .map(|&pid| {
                OmniPaxos::new(
                    OmniPaxosConfig::with(1, pid, nodes.clone()),
                    MemoryStorage::new(),
                )
            })
            .collect();
        let deliver = |replicas: &mut Vec<OmniPaxos<u64, MemoryStorage<u64>>>| {
            for _ in 0..12 {
                for i in 0..replicas.len() {
                    replicas[i].tick();
                    for m in replicas[i].outgoing_messages() {
                        let to = m.to() as usize - 1;
                        replicas[to].handle_message(m);
                    }
                }
            }
        };
        deliver(&mut replicas);
        let leader = replicas.iter().position(|r| r.is_leader()).expect("leader");
        for v in 0..10_000u64 {
            replicas[leader].append(v).expect("append");
        }
        deliver(&mut replicas);
        replicas[leader].decided_idx()
    });
}

/// Micro: one full BLE heartbeat round for a 5-server cluster.
fn ble_micro(quick: bool) {
    let nodes: Vec<u64> = (1..=5).collect();
    let mut bles: Vec<BallotLeaderElection> = nodes
        .iter()
        .map(|&pid| BallotLeaderElection::new(BleConfig::with(pid, &nodes, 1)))
        .collect();
    bench("ble_round_5_servers", iters(quick, 1_000), || {
        for i in 0..bles.len() {
            let _ = bles[i].tick();
            for m in bles[i].outgoing_messages() {
                let to = m.to as usize - 1;
                bles[to].handle_message(m);
            }
        }
        bles[0].leader()
    });
}

/// Micro: storage append / read / trim cycle.
fn storage_micro(quick: bool) {
    bench("storage_append_read_trim_10k", iters(quick, 50), || {
        let mut s: MemoryStorage<u64> = MemoryStorage::new();
        for v in 0..10_000u64 {
            s.append_entry(omnipaxos::LogEntry::Normal(v))
                .expect("append");
        }
        s.set_decided_idx(10_000).expect("decide");
        let mid = s.get_entries(4_000, 6_000);
        s.trim(8_000).expect("trim");
        (mid.len(), s.get_suffix(9_000).len())
    });
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    normal_execution(quick);
    partition_recovery(quick);
    reconfiguration_migration(quick);
    sequence_paxos_micro(quick);
    ble_micro(quick);
    storage_micro(quick);
}
