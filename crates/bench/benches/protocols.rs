//! Criterion benchmarks — one group per paper table/figure plus micro
//! benches and the parallel-migration ablation.
//!
//! These are *performance* benches of the reproduction itself (engine
//! throughput, recovery latency, migration speed). The paper-shaped
//! numbers are produced by the `table1`/`fig7`/`fig8`/`fig9` binaries; the
//! benches keep regressions visible while staying fast enough for CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cluster::client::ClientConfig;
use cluster::protocol::ProtocolKind;
use cluster::runner::{Action, RunConfig, Runner};
use cluster::scenarios::{partition_run, Scenario};
use omnipaxos::{
    BallotLeaderElection, BleConfig, MemoryStorage, OmniPaxos, OmniPaxosConfig, Storage,
};
use simulator::{ms, sec};

/// Fig. 7 counterpart: decided commands per simulated second, per protocol.
fn normal_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("normal_execution");
    group.sample_size(10);
    for protocol in [
        ProtocolKind::OmniPaxos,
        ProtocolKind::Raft,
        ProtocolKind::MultiPaxos,
        ProtocolKind::Vr,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.name()),
            &protocol,
            |b, &p| {
                b.iter(|| {
                    let config = RunConfig {
                        protocol: p,
                        n: 3,
                        client: ClientConfig {
                            cp: 500,
                            entry_size: 8,
                            max_inject_per_tick: 500,
                            retry_ticks: 500,
                        },
                        duration: sec(1),
                        ..Default::default()
                    };
                    let report = Runner::new(config).run();
                    black_box(report.total_decided)
                })
            },
        );
    }
    group.finish();
}

/// Fig. 8 counterpart: recovery from the quorum-loss partition.
fn partition_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_recovery");
    group.sample_size(10);
    for (name, protocol) in [
        ("omni-paxos", ProtocolKind::OmniPaxos),
        ("raft-pv-cq", ProtocolKind::RaftPvCq),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let o = partition_run(protocol, Scenario::QuorumLoss, ms(20), sec(2), 3);
                black_box(o.downtime_us)
            })
        });
    }
    group.finish();
}

/// Fig. 9 / §6.1 ablation: parallel vs leader-only log migration. The
/// measured quantity is a whole short reconfiguration run.
fn reconfiguration_migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfiguration_migration");
    group.sample_size(10);
    for (name, protocol) in [
        ("parallel", ProtocolKind::OmniPaxos),
        ("leader-only", ProtocolKind::OmniPaxosLeaderMigration),
        ("raft-leader-driven", ProtocolKind::Raft),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = RunConfig {
                    protocol,
                    n: 5,
                    joiners: 1,
                    client: ClientConfig {
                        cp: 500,
                        entry_size: 8,
                        max_inject_per_tick: 50,
                        retry_ticks: 500,
                    },
                    election_timeout_us: ms(20),
                    nic_bytes_per_sec: Some(25_000_000),
                    duration: sec(8),
                    initial_log: 50_000,
                    initial_entry_size: 160,
                    window_us: sec(1),
                    schedule: vec![(sec(2), Action::Reconfigure(vec![2, 3, 4, 5, 6]))],
                    ..Default::default()
                };
                let report = Runner::new(config).run();
                black_box(report.reconfig_done_at)
            })
        });
    }
    group.finish();
}

/// Micro: Sequence Paxos replication throughput without the network
/// harness — three replicas driven directly.
fn sequence_paxos_micro(c: &mut Criterion) {
    c.bench_function("sequence_paxos_replicate_10k", |b| {
        b.iter(|| {
            let nodes = vec![1u64, 2, 3];
            let mut replicas: Vec<OmniPaxos<u64, MemoryStorage<u64>>> = nodes
                .iter()
                .map(|&pid| {
                    OmniPaxos::new(
                        OmniPaxosConfig::with(1, pid, nodes.clone()),
                        MemoryStorage::new(),
                    )
                })
                .collect();
            let deliver = |replicas: &mut Vec<OmniPaxos<u64, MemoryStorage<u64>>>| {
                for _ in 0..12 {
                    for i in 0..replicas.len() {
                        replicas[i].tick();
                        for m in replicas[i].outgoing_messages() {
                            let to = m.to() as usize - 1;
                            replicas[to].handle_message(m);
                        }
                    }
                }
            };
            deliver(&mut replicas);
            let leader = replicas.iter().position(|r| r.is_leader()).expect("leader");
            for v in 0..10_000u64 {
                replicas[leader].append(v).expect("append");
            }
            deliver(&mut replicas);
            black_box(replicas[leader].decided_idx())
        })
    });
}

/// Micro: one full BLE heartbeat round for a 5-server cluster.
fn ble_micro(c: &mut Criterion) {
    c.bench_function("ble_round_5_servers", |b| {
        let nodes: Vec<u64> = (1..=5).collect();
        let mut bles: Vec<BallotLeaderElection> = nodes
            .iter()
            .map(|&pid| BallotLeaderElection::new(BleConfig::with(pid, &nodes, 1)))
            .collect();
        b.iter(|| {
            for i in 0..bles.len() {
                let _ = bles[i].tick();
                for m in bles[i].outgoing_messages() {
                    let to = m.to as usize - 1;
                    bles[to].handle_message(m);
                }
            }
            black_box(bles[0].leader())
        })
    });
}

/// Micro: storage append / read / trim cycle.
fn storage_micro(c: &mut Criterion) {
    c.bench_function("storage_append_read_trim_10k", |b| {
        b.iter(|| {
            let mut s: MemoryStorage<u64> = MemoryStorage::new();
            for v in 0..10_000u64 {
                s.append_entry(omnipaxos::LogEntry::Normal(v));
            }
            s.set_decided_idx(10_000);
            let mid = s.get_entries(4_000, 6_000);
            s.trim(8_000).expect("trim");
            black_box((mid.len(), s.get_suffix(9_000).len()))
        })
    });
}

criterion_group!(
    benches,
    normal_execution,
    partition_recovery,
    reconfiguration_migration,
    sequence_paxos_micro,
    ble_micro,
    storage_micro
);
criterion_main!(benches);
