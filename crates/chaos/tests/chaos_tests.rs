//! Integration tests for the chaos harness itself: determinism, the
//! injected-bug regression (the harness must catch a broken protocol), the
//! schedule minimizer, and clean sweeps across every protocol.

use chaos::harness::{run, run_schedule, Bug, ChaosConfig};
use chaos::minimize::minimize;
use chaos::schedule::{Fault, ScheduledFault};
use cluster::protocol::ProtocolKind;
use omnipaxos::StorageFaultKind;

const ALL_PROTOCOLS: [ProtocolKind; 5] = [
    ProtocolKind::OmniPaxos,
    ProtocolKind::Raft,
    ProtocolKind::RaftPvCq,
    ProtocolKind::MultiPaxos,
    ProtocolKind::Vr,
];

#[test]
fn same_seed_produces_bit_identical_trace() {
    for protocol in [ProtocolKind::OmniPaxos, ProtocolKind::Raft] {
        let cfg = ChaosConfig::new(protocol, 42);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.fingerprint, b.fingerprint, "{protocol:?}");
        assert_eq!(
            format!("{:?}", a.trace),
            format!("{:?}", b.trace),
            "replay of the same seed must reproduce the trace event-for-event"
        );
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.violation, b.violation);
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    let a = run(&ChaosConfig::new(ProtocolKind::OmniPaxos, 1));
    let b = run(&ChaosConfig::new(ProtocolKind::OmniPaxos, 2));
    assert_ne!(a.fingerprint, b.fingerprint);
}

/// The harness regression test demanded by the issue: wire in a replica
/// that acknowledges decided entries before persisting them (loses its
/// decided tail on crash) and assert the harness *fails* the run with a
/// durability violation. A harness that lets this pass is broken.
#[test]
fn ack_before_persist_bug_is_caught() {
    let mut cfg = ChaosConfig::new(ProtocolKind::OmniPaxos, 3);
    cfg.bug = Some(Bug::AckBeforePersist);
    // A targeted schedule: let the cluster decide entries, crash a node,
    // recover it. The buggy recovery drops the decided tail, which the
    // monitor must flag as a durability breach.
    let schedule = vec![
        ScheduledFault {
            at_tick: 400,
            fault: Fault::Crash(2),
        },
        ScheduledFault {
            at_tick: 500,
            fault: Fault::Recover(2),
        },
    ];
    let report = run_schedule(&cfg, &schedule);
    let v = report
        .violation
        .expect("the harness must catch ack-before-persist");
    assert_eq!(v.invariant, "durability", "wrong invariant: {v:?}");
}

/// Same bug, but through the randomized generator: the sweep finds it too.
#[test]
fn ack_before_persist_bug_is_caught_by_random_sweep() {
    let caught = (1..=10u64).any(|seed| {
        let mut cfg = ChaosConfig::new(ProtocolKind::OmniPaxos, seed);
        cfg.bug = Some(Bug::AckBeforePersist);
        run(&cfg).violation.is_some()
    });
    assert!(caught, "10 random schedules must include a crash+recover");
}

/// The same schedules against the real implementation pass: the bug
/// regression above is detecting the bug, not the harness tripping over
/// crashes in general.
#[test]
fn correct_implementation_passes_the_same_targeted_schedule() {
    let cfg = ChaosConfig::new(ProtocolKind::OmniPaxos, 3);
    let schedule = vec![
        ScheduledFault {
            at_tick: 400,
            fault: Fault::Crash(2),
        },
        ScheduledFault {
            at_tick: 500,
            fault: Fault::Recover(2),
        },
    ];
    let report = run_schedule(&cfg, &schedule);
    assert_eq!(report.violation, None, "{:?}", report.violation);
}

#[test]
fn minimizer_shrinks_a_failing_schedule() {
    let mut cfg = ChaosConfig::new(ProtocolKind::OmniPaxos, 7);
    cfg.bug = Some(Bug::AckBeforePersist);
    let report = run(&cfg);
    assert!(report.violation.is_some(), "seed 7 must fail under the bug");
    let reduced = minimize(&cfg, &report.schedule);
    assert!(reduced.len() <= report.schedule.len());
    assert!(
        run_schedule(&cfg, &reduced).violation.is_some(),
        "minimized schedule must still fail"
    );
    // 1-minimality: removing any single remaining fault loses the failure.
    for i in 0..reduced.len() {
        let mut cand = reduced.clone();
        cand.remove(i);
        assert_eq!(
            run_schedule(&cfg, &cand).violation,
            None,
            "fault {i} of the minimized schedule is removable"
        );
    }
}

/// A small clean sweep: every protocol survives randomized fault schedules
/// with no safety or bounded-liveness violation. (The CI quick gate runs a
/// larger version of this; here it guards `cargo test` alone.)
#[test]
fn clean_sweep_across_all_protocols() {
    for protocol in ALL_PROTOCOLS {
        for seed in 201..=203 {
            let report = run(&ChaosConfig::new(protocol, seed));
            assert_eq!(
                report.violation,
                None,
                "{} seed {seed}: {:?}",
                protocol.name(),
                report.violation
            );
        }
    }
}

/// Regressions the sweep itself found (each seed reproduced a real,
/// since-fixed protocol bug; the seeds replay the schedules that exposed
/// them):
///
/// * Omni seed 136 — a joiner catching up via a snapshot extending past
///   the configuration boundary started the new instance with a shifted
///   `base`, re-delivering entries at wrong positions (prefix-agreement).
/// * Omni seed 760 — a donor compacting mid-migration left joiners
///   striping segments that no longer existed anywhere; the retried
///   `StartConfig` now upgrades the migration with a snapshot pull
///   (liveness).
/// * MP seed 746 — a recovered ex-leader still marked active proposed new
///   commands into already-chosen slots below its watermark
///   (prefix-agreement).
/// * MP seed 952 — a stale same-ballot P2a overwrote a chosen slot below
///   the receiver's decision watermark (prefix-agreement).
#[test]
fn sweep_found_regressions_stay_fixed() {
    for seed in [136, 760, 1272, 1653, 1727] {
        let report = run(&ChaosConfig::new(ProtocolKind::OmniPaxos, seed));
        assert_eq!(
            report.violation, None,
            "omni seed {seed}: {:?}",
            report.violation
        );
    }
    for seed in [746, 952, 1167] {
        let report = run(&ChaosConfig::new(ProtocolKind::MultiPaxos, seed));
        assert_eq!(
            report.violation, None,
            "mp seed {seed}: {:?}",
            report.violation
        );
    }
}

/// A targeted disk-fault run: a follower's fsync fails mid-replication,
/// the server fail-stops, and a later recovery re-syncs it — with no
/// durability or agreement breach and full liveness afterwards.
#[test]
fn disk_fault_halts_then_recovery_resyncs() {
    let cfg = ChaosConfig::new(ProtocolKind::OmniPaxos, 5);
    let schedule = vec![
        ScheduledFault {
            at_tick: 300,
            fault: Fault::DiskFault(2, StorageFaultKind::SyncFailed),
        },
        ScheduledFault {
            at_tick: 700,
            fault: Fault::Recover(2),
        },
    ];
    let report = run_schedule(&cfg, &schedule);
    assert_eq!(report.violation, None, "{:?}", report.violation);
    assert!(
        report
            .trace
            .iter()
            .any(|e| format!("{e:?}").contains("disk-fault 2")),
        "the fault must actually have fired"
    );
}

/// The worst case: the leader's disk dies. The cluster must elect around
/// it and keep deciding; the halted ex-leader recovers at the forced heal.
#[test]
fn leader_disk_fault_does_not_stall_the_cluster() {
    for kind in [
        StorageFaultKind::SyncFailed,
        StorageFaultKind::ShortWrite,
        StorageFaultKind::NoSpace,
        StorageFaultKind::Corruption,
        StorageFaultKind::CheckpointCrash,
    ] {
        let cfg = ChaosConfig::new(ProtocolKind::OmniPaxos, 9);
        let schedule = vec![ScheduledFault {
            at_tick: 300,
            fault: Fault::DiskFaultLeader(kind),
        }];
        let report = run_schedule(&cfg, &schedule);
        assert_eq!(report.violation, None, "{kind:?}: {:?}", report.violation);
    }
}

/// Baselines have no fallible-storage model; a disk fault degrades to a
/// crash and the run must still be clean.
#[test]
fn disk_faults_degrade_to_crashes_on_baselines() {
    for protocol in [
        ProtocolKind::Raft,
        ProtocolKind::MultiPaxos,
        ProtocolKind::Vr,
    ] {
        let cfg = ChaosConfig::new(protocol, 5);
        let schedule = vec![
            ScheduledFault {
                at_tick: 300,
                fault: Fault::DiskFault(2, StorageFaultKind::SyncFailed),
            },
            ScheduledFault {
                at_tick: 700,
                fault: Fault::Recover(2),
            },
        ];
        let report = run_schedule(&cfg, &schedule);
        assert_eq!(
            report.violation,
            None,
            "{}: {:?}",
            protocol.name(),
            report.violation
        );
        assert!(
            report
                .trace
                .iter()
                .any(|e| format!("{e:?}").contains("degraded to crash")),
            "{}: the fault must degrade to a crash",
            protocol.name()
        );
    }
}

/// A small clean sweep under the disk-fault schedule profile, every
/// protocol. (The nightly job runs the 500-seed version.)
#[test]
fn disk_fault_sweep_is_clean() {
    for protocol in ALL_PROTOCOLS {
        for seed in 301..=303 {
            let mut cfg = ChaosConfig::new(protocol, seed);
            cfg.disk_faults = true;
            let report = run(&cfg);
            assert_eq!(
                report.violation,
                None,
                "{} seed {seed}: {:?}",
                protocol.name(),
                report.violation
            );
        }
    }
}

/// Disk-profile runs replay bit-identically, like every other run.
#[test]
fn disk_runs_are_deterministic() {
    let mut cfg = ChaosConfig::new(ProtocolKind::OmniPaxos, 77);
    cfg.disk_faults = true;
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(format!("{:?}", a.trace), format!("{:?}", b.trace));
}

#[test]
fn kv_store_sessions_survive_chaos() {
    let stats = chaos::run_kv_chaos(11).expect("kv chaos must pass");
    assert!(stats.applied > 0, "the run must actually apply commands");
    assert!(stats.duplicates > 0, "the run must actually inject retries");
}

/// Cross-shard 2PC bank transfers survive chaos: balances match the
/// replicated decision log, money is conserved, and no prepare lock
/// outlives the heal. (The nightly job runs the 300-seed version; seed
/// 2 also migrates a shard mid-traffic.)
#[test]
fn cross_shard_txns_survive_chaos() {
    for seed in [1, 2] {
        let stats = chaos::run_txn_chaos(seed).expect("txn chaos must pass");
        assert!(stats.committed > 0, "seed {seed}: some transfers commit");
        assert!(stats.aborted > 0, "seed {seed}: some transfers abort");
        assert!(
            stats.cross_shard > 0,
            "seed {seed}: workload must span shards"
        );
    }
}

/// Txn chaos runs are deterministic: same seed, same statistics.
#[test]
fn txn_chaos_is_deterministic() {
    let a = chaos::run_txn_chaos(5).expect("seed 5 passes");
    let b = chaos::run_txn_chaos(5).expect("seed 5 passes");
    assert_eq!(a, b);
}
