//! Greedy fault-schedule minimization (delta debugging).
//!
//! Given a failing `(config, schedule)` pair, repeatedly re-run with
//! subsets of the schedule and keep any subset that still fails. Chunked
//! passes (drop half, then quarters, …) shrink fast; a final
//! one-at-a-time pass removes every individually unnecessary event. The
//! result is 1-minimal: removing any single remaining fault makes the
//! failure disappear — which is usually the difference between staring at
//! fourteen faults and staring at the two that matter.

use crate::harness::{run_schedule, ChaosConfig};
use crate::schedule::ScheduledFault;

fn fails(cfg: &ChaosConfig, schedule: &[ScheduledFault]) -> bool {
    run_schedule(cfg, schedule).violation.is_some()
}

/// Minimize a failing schedule. Returns the reduced schedule, which still
/// fails under `cfg`. Panics if the input does not fail (nothing to
/// minimize — a caller bug).
pub fn minimize(cfg: &ChaosConfig, schedule: &[ScheduledFault]) -> Vec<ScheduledFault> {
    assert!(
        fails(cfg, schedule),
        "minimize() needs a failing schedule to start from"
    );
    let mut cur: Vec<ScheduledFault> = schedule.to_vec();

    // Chunked passes: try dropping progressively smaller windows.
    let mut chunk = (cur.len() / 2).max(1);
    while chunk >= 1 {
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - start));
            cand.extend_from_slice(&cur[..start]);
            cand.extend_from_slice(&cur[end..]);
            if fails(cfg, &cand) {
                cur = cand; // window was irrelevant; don't advance start
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Final 1-minimal pass (chunk == 1 above already is one, but chunked
    // removals can re-enable single removals — iterate to fixpoint).
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            if fails(cfg, &cand) {
                cur = cand;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    cur
}
