//! # chaos — deterministic fault-injection harness
//!
//! Drives randomized fault schedules over the deterministic simulator and
//! checks the paper's safety properties (§4) after every step, across
//! Omni-Paxos and every baseline of the §7.2 comparison (Raft, Raft
//! PV+CQ, Multi-Paxos, VR).
//!
//! The fault model covers what the paper's analysis (§2–§3) identifies as
//! the hard cases:
//!
//! * **partial partitions** — arbitrary link cuts plus the three named
//!   patterns (quorum-loss, constrained election, chained), resolved
//!   against the live leader at injection time via the shared cut-set
//!   functions in [`cluster::scenarios`];
//! * **session drops** — a link cut that also loses the bytes on the
//!   wire, exercising the session-reset protocol (§4.1.3);
//! * **crash + recover** — fail-recovery (§3) through each protocol's
//!   persistent state, with in-flight messages to the crashed server
//!   vanishing;
//! * **disk faults** — seeded storage failpoints (failed fsync, short
//!   write, ENOSPC, detected corruption, crash mid-checkpoint) armed at
//!   arbitrary servers or the live leader; a server whose disk fails must
//!   fail-stop (ack nothing, emit nothing) until recovered, and no entry
//!   it acknowledged before the fault may be lost;
//! * **delay spikes** — raised delivery jitter, reordering messages
//!   across links while per-link FIFO stays intact;
//! * **mid-run compaction and reconfiguration** — snapshot-based log
//!   trimming and same-membership configuration changes while faults are
//!   active.
//!
//! After every simulation tick the [`monitor::Monitor`] checks:
//!
//! * **prefix agreement** — any two servers' decided entries agree at
//!   every position both know (SC2), across both the entries delivered to
//!   the application and the log each server retains;
//! * **durability** — no server's decided log ever shrinks, and its
//!   delivery cursor never moves backwards, across crash + recovery;
//! * **validity** — decided entries were actually proposed (SC1);
//! * **leader-epoch uniqueness** — at most one server claims leadership
//!   per epoch (term for Raft, view for VR, full ballot for the Paxos
//!   family, where ballots themselves carry the owner);
//! * **election audit (LE3)** — ballots elected by a server's BLE
//!   strictly increase.
//!
//! After the schedule ends every fault is healed and a bounded-recovery
//! **liveness** probe runs: freshly proposed commands must decide at every
//! server within a generous bound, or the run fails.
//!
//! A failing run reports its seed, a replayable event trace with a
//! fingerprint (same seed ⇒ bit-identical trace), and — via
//! [`minimize::minimize`] — a greedily reduced fault schedule that still
//! reproduces the failure.

pub mod buggy;
pub mod harness;
pub mod kv_chaos;
pub mod minimize;
pub mod monitor;
pub mod read_chaos;
pub mod schedule;
pub mod shard_chaos;
pub mod trace;
pub mod txn_chaos;

pub use buggy::BuggyOmniReplica;
pub use harness::{run, run_schedule, Bug, ChaosConfig, ChaosReport, Violation};
pub use kv_chaos::{run_kv_chaos, KvChaosStats};
pub use minimize::minimize;
pub use read_chaos::{run_read_chaos, ReadChaosStats};
pub use schedule::{generate, generate_disk, Fault, ScheduledFault};
pub use shard_chaos::{run_shard_chaos, ShardChaosStats};
pub use trace::{fingerprint, render_report, TraceEvent};
pub use txn_chaos::{run_txn_chaos, TxnChaosStats};

/// Server identifier, shared with the rest of the workspace.
pub type NodeId = cluster::NodeId;
