//! Chaos over the linearizable read modes: staleness under skew + faults.
//!
//! The kv chaos module checks session dedup; this one checks the *read*
//! contract of [`kvstore::ReadMode`]. A monotone counter per key is grown
//! through `Add` writes at the current leader; every read — leader-lease,
//! read-index, or read-through-log — must observe a value at least as
//! large as every `Add` whose completion was observed **before the read
//! was issued**. A lease implementation that let a deposed-but-lease-
//! holding leader keep serving after a successor committed writes, or a
//! read-index barrier captured from a stale leader, shows up here as a
//! counter going backwards.
//!
//! On top of the link cuts and crash/recovery faults, a **clock-skew
//! nemesis** runs each node's lease clock at a slightly different rate:
//! a per-seed subset of nodes gets one extra `tick()` every few steps,
//! with drift bounded by the configured `lease_epsilon_ticks` per lease
//! window — the exact contract the epsilon is supposed to absorb. Skew
//! inside the bound must never produce a stale read.

use kvstore::{KvCommand, KvNode, KvOp, NodeId, ReadMode};
use omnipaxos::service::{ServerConfig, ServiceMsg};
use simulator::{Network, NetworkConfig, Rng};
use std::collections::{HashMap, HashSet};

const TICK_US: u64 = 1_000;
const N: usize = 3;
/// Lease duration in simulator ticks; epsilon is the skew the cluster
/// contract absorbs, and the nemesis drifts clocks right up to it.
const LEASE_TICKS: u64 = 30;
const LEASE_EPSILON: u64 = 6;

/// Statistics of a passing read-chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadChaosStats {
    pub writes: u64,
    pub reads_issued: u64,
    pub reads_served: u64,
    pub reads_expired: u64,
    pub converge_ticks: u64,
}

/// One seeded schedule of writes, reads in `mode`, faults, and bounded
/// clock skew; `Err` describes the violated invariant.
pub fn run_read_chaos(seed: u64, mode: ReadMode) -> Result<ReadChaosStats, String> {
    let members: Vec<NodeId> = (1..=N as NodeId).collect();
    let mut nodes: Vec<KvNode> = members
        .iter()
        .map(|&p| {
            let mut cfg = ServerConfig::with(p);
            cfg.lease_ticks = LEASE_TICKS;
            cfg.lease_epsilon_ticks = LEASE_EPSILON;
            KvNode::with_config(cfg, members.clone())
        })
        .collect();
    let mut net: Network<ServiceMsg<KvCommand>> = Network::new(NetworkConfig {
        nodes: members.clone(),
        default_latency_us: 100,
        jitter_us: 0,
        nic_bytes_per_sec: None,
        priority_bytes: 256,
        seed,
    });
    let mut rng = Rng::seed_from_u64(seed ^ 0xBEAD_CAFE ^ mode.discriminant() as u64);

    // Clock-skew nemesis: node i gets one extra tick every `period` steps
    // (0 = a well-behaved clock). The fastest allowed period keeps drift
    // under LEASE_EPSILON per LEASE_TICKS window: 30/8 < 6.
    let skew_period: Vec<u64> = (0..N)
        .map(|_| match rng.below(3) {
            0 => 0,
            1 => 8,
            _ => 16,
        })
        .collect();

    let mut crashed: HashSet<NodeId> = HashSet::new();
    let mut cut: Vec<(NodeId, NodeId)> = Vec::new();
    let mut next_seq: HashMap<u64, u64> = HashMap::new();
    // Where each write was submitted: completion is when THAT node reports
    // it applied — only then does the write's value join the read floor.
    let mut write_site: HashMap<(u64, u64), usize> = HashMap::new();
    // Highest completed counter value per key: the staleness floor.
    let mut floor: HashMap<String, i64> = HashMap::new();
    // Reads in flight: (issuing node, client, seq) -> (key, floor at issue).
    let mut pending_reads: HashMap<(usize, u64, u64), (String, i64)> = HashMap::new();
    let mut read_seq = 0u64;
    let mut stats = ReadChaosStats {
        writes: 0,
        reads_issued: 0,
        reads_served: 0,
        reads_expired: 0,
        converge_ticks: 0,
    };

    let step = |t: u64,
                nodes: &mut Vec<KvNode>,
                net: &mut Network<ServiceMsg<KvCommand>>,
                crashed: &HashSet<NodeId>,
                write_site: &HashMap<(u64, u64), usize>,
                floor: &mut HashMap<String, i64>,
                pending_reads: &mut HashMap<(usize, u64, u64), (String, i64)>,
                stats: &mut ReadChaosStats|
     -> Result<(), String> {
        let deadline = t * TICK_US;
        while let Some(d) = net.pop_next_before(deadline) {
            if !crashed.contains(&d.dst) {
                nodes[(d.dst - 1) as usize].handle(d.src, d.msg);
            }
        }
        net.advance_to(deadline);
        for (i, node) in nodes.iter_mut().enumerate() {
            let pid = (i + 1) as NodeId;
            let out = node.outgoing();
            if crashed.contains(&pid) {
                continue;
            }
            node.tick();
            if skew_period[i] > 0 && t.is_multiple_of(skew_period[i]) {
                // The skewed clock runs fast: an extra lease tick.
                node.tick();
            }
            for (to, msg) in out {
                let bytes = msg.size_bytes();
                net.send(pid, to, bytes, msg);
            }
            for r in node.take_results() {
                if let Some((key, read_floor)) = pending_reads.remove(&(i, r.client, r.seq)) {
                    if r.applied {
                        stats.reads_served += 1;
                        let seen = r.value.unwrap_or(0);
                        if seen < read_floor {
                            return Err(format!(
                                "stale read: node {pid} served {key}={seen} in mode {mode:?} \
                                 after a completed write had raised it to {read_floor}"
                            ));
                        }
                    } else {
                        stats.reads_expired += 1;
                    }
                } else if r.applied && write_site.get(&(r.client, r.seq)) == Some(&i) {
                    // The submitting site answered: the write completed,
                    // so every later read must observe it.
                    if let Some(v) = r.value {
                        let f = floor.entry(format!("k{}", r.seq % 4)).or_insert(0);
                        // `Add` returns the post-apply counter; keys are
                        // derived from seq below so the echo maps back.
                        *f = (*f).max(v);
                    }
                }
            }
        }
        Ok(())
    };

    for t in 1..=1_500u64 {
        if rng.chance(0.01) {
            let a = rng.range_inclusive(1, N as u64);
            let b = 1 + (a % N as u64);
            match rng.below(4) {
                0 => {
                    net.links_mut().set_link(a, b, false);
                    cut.push((a, b));
                }
                1 => {
                    if let Some((x, y)) = cut.pop() {
                        if net.links_mut().set_link(x, y, true) {
                            nodes[(x - 1) as usize].server().reconnected(y);
                            nodes[(y - 1) as usize].server().reconnected(x);
                        }
                    }
                }
                2 => {
                    if crashed.insert(a) {
                        net.drop_in_flight_for(a);
                    }
                }
                _ => {
                    if crashed.remove(&a) {
                        // Leases must not survive recovery: fail_recovery
                        // re-arms the grant holdoff, and any stale serve
                        // after this point trips the floor check.
                        nodes[(a - 1) as usize].server().fail_recovery();
                    }
                }
            }
        }

        // Writes: monotone counters, submitted at a claiming leader (under
        // a partition both the deposed and the new leader may claim — the
        // dangerous interleaving the lease must survive).
        if t % 5 == 0 {
            let claiming: Vec<usize> = (0..N)
                .filter(|&i| !crashed.contains(&((i + 1) as NodeId)) && nodes[i].is_leader())
                .collect();
            if !claiming.is_empty() {
                let li = claiming[rng.below(claiming.len() as u64) as usize];
                let client = rng.range_inclusive(1, 2);
                let seq = next_seq.entry(client).or_insert(1);
                let s = *seq;
                *seq += 1;
                let cmd = KvCommand {
                    client,
                    seq: s,
                    op: KvOp::Add {
                        key: format!("k{}", s % 4),
                        delta: 1,
                    },
                };
                if nodes[li].submit(cmd).is_ok() {
                    stats.writes += 1;
                    write_site.insert((client, s), li);
                }
            }
        }

        // Reads in the mode under test, issued at a random live node —
        // including deposed leaders and partitioned followers.
        if t % 3 == 0 {
            let i = rng.below(N as u64) as usize;
            if !crashed.contains(&((i + 1) as NodeId)) {
                let key = format!("k{}", rng.below(4));
                read_seq += 1;
                let client = 900 + i as u64;
                let snapshot = floor.get(&key).copied().unwrap_or(0);
                if nodes[i].read(mode, client, read_seq, key.clone()).is_ok() {
                    stats.reads_issued += 1;
                    pending_reads.insert((i, client, read_seq), (key, snapshot));
                }
            }
        }

        step(
            t,
            &mut nodes,
            &mut net,
            &crashed,
            &write_site,
            &mut floor,
            &mut pending_reads,
            &mut stats,
        )?;
    }

    // Heal everything and require convergence plus drained reads.
    for (x, y) in cut.drain(..) {
        if net.links_mut().set_link(x, y, true) {
            nodes[(x - 1) as usize].server().reconnected(y);
            nodes[(y - 1) as usize].server().reconnected(x);
        }
    }
    let down: Vec<NodeId> = crashed.drain().collect();
    for p in down {
        nodes[(p - 1) as usize].server().fail_recovery();
    }
    for t in 1_501..=6_000u64 {
        step(
            t,
            &mut nodes,
            &mut net,
            &crashed,
            &write_site,
            &mut floor,
            &mut pending_reads,
            &mut stats,
        )?;
        if t % 16 == 0 {
            let sm0 = nodes[0].state_machine();
            // Reads may be legitimately lost (a log-path read whose
            // proposal died with a cut link has no retry machinery here;
            // real clients retry end to end), so convergence does not
            // require the pending map to drain — but any read that DOES
            // complete after heal still goes through the floor check.
            if nodes[1..].iter().all(|n| n.state_machine() == sm0) {
                stats.converge_ticks = t - 1_500;
                return Ok(stats);
            }
        }
    }
    let detail: Vec<String> = nodes
        .iter_mut()
        .map(|n| {
            let (keys, decided, is_l, lease, believes) = (
                n.state().len(),
                n.server_ref().decided_len(),
                n.is_leader(),
                n.lease_valid(),
                n.server_ref().leader(),
            );
            let pid = n.pid();
            let ble = n
                .server()
                .omni()
                .map(|o| {
                    let b = o.ble();
                    format!(
                        "ballot={:?} ble_leader={:?} grant_active={} granted_to={:?} qc={}",
                        b.current_ballot(),
                        b.leader(),
                        b.grant_active(),
                        b.granted_to(),
                        b.is_quorum_connected()
                    )
                })
                .unwrap_or_default();
            format!(
                "pid {pid} keys={keys} decided={decided} leader={is_l} lease={lease} \
                 believes={believes:?} {ble}"
            )
        })
        .collect();
    Err(format!(
        "read-chaos replicas did not converge after heal: {}",
        detail.join("; ")
    ))
}
