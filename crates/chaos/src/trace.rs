//! Replayable event traces and their fingerprints.
//!
//! Every chaos run records what happened — faults as resolved (with the
//! concrete pids the leader-relative patterns landed on), decided batches,
//! leadership changes, phase transitions, the violation if any. Two runs of
//! the same seed must produce bit-identical traces; [`fingerprint`] folds a
//! trace into one `u64` so that claim is cheap to check and to print.

use crate::harness::ChaosReport;
use crate::NodeId;

/// One observed event of a chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A fault fired, with leader-relative parts resolved to pids.
    Fault { tick: u64, desc: String },
    /// A server delivered newly decided commands starting at absolute log
    /// position `base`.
    Decide {
        tick: u64,
        pid: NodeId,
        base: u64,
        ids: Vec<u64>,
    },
    /// A server started claiming leadership under a new epoch.
    Leader {
        tick: u64,
        pid: NodeId,
        epoch: u64,
        owner: NodeId,
    },
    /// Phase transition (start, forced heal, liveness convergence).
    Phase { tick: u64, desc: String },
    /// An invariant was violated; the run stops here.
    Violation { tick: u64, desc: String },
}

/// FNV-1a over the canonical rendering of the trace. Stable across runs of
/// the same binary, which is what seed-replay debugging needs.
pub fn fingerprint(events: &[TraceEvent]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in events {
        for b in format!("{e:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Human-readable failure report: seed, violation, schedule, full trace.
/// This is what the CLI prints and what CI uploads as an artifact.
pub fn render_report(report: &ChaosReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "protocol: {}\nseed: {}\nnodes: {}\nfingerprint: {:016x}\n",
        report.protocol.name(),
        report.seed,
        report.n,
        report.fingerprint
    ));
    match &report.violation {
        Some(v) => out.push_str(&format!(
            "VIOLATION at tick {}: [{}] {}\n",
            v.tick, v.invariant, v.detail
        )),
        None => out.push_str("no violation\n"),
    }
    out.push_str("\nschedule:\n");
    for f in &report.schedule {
        out.push_str(&format!("  @{:>6} {:?}\n", f.at_tick, f.fault));
    }
    out.push_str("\ntrace:\n");
    for e in &report.trace {
        match e {
            TraceEvent::Fault { tick, desc } => {
                out.push_str(&format!("  @{tick:>6} fault  {desc}\n"));
            }
            TraceEvent::Decide {
                tick,
                pid,
                base,
                ids,
            } => {
                out.push_str(&format!(
                    "  @{tick:>6} decide pid={pid} pos={base}..{} ids={ids:?}\n",
                    base + ids.len() as u64
                ));
            }
            TraceEvent::Leader {
                tick,
                pid,
                epoch,
                owner,
            } => {
                out.push_str(&format!(
                    "  @{tick:>6} leader pid={pid} epoch=({epoch},{owner})\n"
                ));
            }
            TraceEvent::Phase { tick, desc } => {
                out.push_str(&format!("  @{tick:>6} phase  {desc}\n"));
            }
            TraceEvent::Violation { tick, desc } => {
                out.push_str(&format!("  @{tick:>6} VIOLATION {desc}\n"));
            }
        }
    }
    out
}
