//! Chaos over the replicated key-value store: session dedup under faults.
//!
//! The cluster-level harness checks log safety; this module checks the
//! *application* contract on top of it. Clients submit windowed bursts of
//! commands with per-client sequence numbers — many seqs outstanding at
//! once, like a pipelined socket client — and deliberately retry seqs
//! anywhere in the window, including ones older than later seqs already
//! applied. Exactly once per `(client, seq)` must take effect, across
//! link cuts, crash + recovery, and snapshot compaction (the session
//! table is part of the snapshot; a snapshot that forgot it would
//! re-apply retries after a transfer, which is the bug this run would
//! catch).

use kvstore::{KvCommand, KvNode, KvOp, NodeId};
use omnipaxos::service::ServiceMsg;
use simulator::{Network, NetworkConfig, Rng};
use std::collections::{HashMap, HashSet};

const TICK_US: u64 = 1_000;
const N: usize = 3;

/// Statistics of a passing key-value chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvChaosStats {
    pub submitted: u64,
    pub duplicates: u64,
    pub applied: u64,
    pub converge_ticks: u64,
}

/// Run one seeded kv chaos schedule; `Err` describes the violated
/// invariant.
pub fn run_kv_chaos(seed: u64) -> Result<KvChaosStats, String> {
    let members: Vec<NodeId> = (1..=N as NodeId).collect();
    let mut nodes: Vec<KvNode> = members
        .iter()
        .map(|&p| KvNode::new(p, members.clone()))
        .collect();
    let mut net: Network<ServiceMsg<KvCommand>> = Network::new(NetworkConfig {
        nodes: members.clone(),
        default_latency_us: 100,
        jitter_us: 0,
        nic_bytes_per_sec: None,
        priority_bytes: 256,
        seed,
    });
    let mut rng = Rng::seed_from_u64(seed ^ 0x5E55_10D5);
    let mut crashed: HashSet<NodeId> = HashSet::new();
    let mut cut: Vec<(NodeId, NodeId)> = Vec::new();
    // Per-client next sequence number, and a sliding window of recent
    // commands per client: retries resend a random command still in the
    // window — including seqs *older* than ones already applied, which is
    // exactly the hazard a pipelined (windowed-seq) client creates when
    // it retransmits its whole outstanding window after a reconnect.
    let mut next_seq: HashMap<u64, u64> = HashMap::new();
    let mut recent: HashMap<u64, Vec<KvCommand>> = HashMap::new();
    // Per node: the verdict value reported for each applied (client, seq).
    // The session table replays the cached verdict verbatim when the
    // latest seq is retransmitted, so a duplicate *report* is legal — but
    // the verdict must be identical every time (a changed value would
    // mean the op re-executed instead of replaying).
    let mut applied_seen: Vec<HashMap<(u64, u64), Option<i64>>> = vec![HashMap::new(); N];
    let mut stats = KvChaosStats {
        submitted: 0,
        duplicates: 0,
        applied: 0,
        converge_ticks: 0,
    };

    let step = |t: u64,
                nodes: &mut Vec<KvNode>,
                net: &mut Network<ServiceMsg<KvCommand>>,
                crashed: &HashSet<NodeId>,
                applied_seen: &mut Vec<HashMap<(u64, u64), Option<i64>>>,
                stats: &mut KvChaosStats|
     -> Result<(), String> {
        let deadline = t * TICK_US;
        while let Some(d) = net.pop_next_before(deadline) {
            if !crashed.contains(&d.dst) {
                nodes[(d.dst - 1) as usize].handle(d.src, d.msg);
            }
        }
        net.advance_to(deadline);
        for (i, node) in nodes.iter_mut().enumerate() {
            let pid = (i + 1) as NodeId;
            let out = node.outgoing();
            if crashed.contains(&pid) {
                continue;
            }
            node.tick();
            for (to, msg) in out {
                let bytes = msg.size_bytes();
                net.send(pid, to, bytes, msg);
            }
            for r in node.take_results() {
                if r.applied {
                    if let Some(prev) = applied_seen[i].get(&(r.client, r.seq)) {
                        if *prev != r.value {
                            return Err(format!(
                                "verdict instability: node {pid} reported ({}, {}) \
                                 applied with {:?}, then {:?}",
                                r.client, r.seq, prev, r.value
                            ));
                        }
                    } else {
                        applied_seen[i].insert((r.client, r.seq), r.value);
                        stats.applied += 1;
                    }
                }
            }
        }
        Ok(())
    };

    // Fault + workload phase.
    for t in 1..=1_500u64 {
        // Faults, low-rate.
        if rng.chance(0.01) {
            let a = rng.range_inclusive(1, N as u64);
            let b = 1 + (a % N as u64);
            match rng.below(4) {
                0 => {
                    net.links_mut().set_link(a, b, false);
                    cut.push((a, b));
                }
                1 => {
                    if let Some((x, y)) = cut.pop() {
                        if net.links_mut().set_link(x, y, true) {
                            nodes[(x - 1) as usize].server().reconnected(y);
                            nodes[(y - 1) as usize].server().reconnected(x);
                        }
                    }
                }
                2 => {
                    if crashed.insert(a) {
                        net.drop_in_flight_for(a);
                    }
                }
                _ => {
                    if crashed.remove(&a) {
                        nodes[(a - 1) as usize].server().fail_recovery();
                    } else if !crashed.contains(&a) {
                        let _ = nodes[(a - 1) as usize].compact();
                    }
                }
            }
        }
        // Workload: windowed bursts of fresh commands, with deliberate
        // retries of commands anywhere in the recent window (a pipelined
        // client resends its whole outstanding window, oldest first).
        if t % 5 == 0 {
            let client = rng.range_inclusive(1, 2);
            let leader =
                (0..N).find(|&i| !crashed.contains(&((i + 1) as NodeId)) && nodes[i].is_leader());
            if let Some(li) = leader {
                let window = recent.entry(client).or_default();
                if rng.chance(0.3) && !window.is_empty() {
                    // Retry: a random in-window seq — often one older
                    // than later seqs already applied. Dedup must still
                    // apply each (client, seq) exactly once.
                    let idx = rng.below(window.len() as u64) as usize;
                    stats.duplicates += 1;
                    if nodes[li].submit(window[idx].clone()).is_ok() {
                        stats.submitted += 1;
                    }
                } else {
                    // Fresh burst: several new seqs back to back, in seq
                    // order — the open-loop window filling up.
                    let burst = rng.range_inclusive(1, 4);
                    for _ in 0..burst {
                        let seq = next_seq.entry(client).or_insert(1);
                        let s = *seq;
                        *seq += 1;
                        let c = KvCommand {
                            client,
                            seq: s,
                            op: KvOp::Add {
                                key: format!("k{}", rng.below(4)),
                                delta: rng.range_inclusive(1, 9) as i64,
                            },
                        };
                        window.push(c.clone());
                        if window.len() > 16 {
                            window.remove(0);
                        }
                        if nodes[li].submit(c).is_ok() {
                            stats.submitted += 1;
                        }
                    }
                }
            }
        }
        step(
            t,
            &mut nodes,
            &mut net,
            &crashed,
            &mut applied_seen,
            &mut stats,
        )?;
    }

    // Heal, recover, and require convergence: same map, same sessions.
    for (x, y) in cut.drain(..) {
        if net.links_mut().set_link(x, y, true) {
            nodes[(x - 1) as usize].server().reconnected(y);
            nodes[(y - 1) as usize].server().reconnected(x);
        }
    }
    let down: Vec<NodeId> = crashed.drain().collect();
    for p in down {
        nodes[(p - 1) as usize].server().fail_recovery();
    }
    for t in 1_501..=6_000u64 {
        step(
            t,
            &mut nodes,
            &mut net,
            &crashed,
            &mut applied_seen,
            &mut stats,
        )?;
        if t % 16 == 0 {
            let sm0 = nodes[0].state_machine();
            if nodes[1..].iter().all(|n| n.state_machine() == sm0) {
                stats.converge_ticks = t - 1_500;
                // Sessions must never exceed what clients actually issued.
                for (client, entry) in sm0.sessions() {
                    let issued = next_seq.get(client).map(|s| s - 1).unwrap_or(0);
                    if entry.seq > issued {
                        return Err(format!(
                            "session table ahead of reality: client {client} at seq \
                             {}, only {issued} issued",
                            entry.seq
                        ));
                    }
                }
                return Ok(stats);
            }
        }
    }
    Err(format!(
        "kv replicas did not converge after heal: states {:?} / {:?} / {:?} keys",
        nodes[0].state().len(),
        nodes[1].state().len(),
        nodes[2].state().len()
    ))
}
