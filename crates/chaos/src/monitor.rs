//! The invariant monitor: cluster-wide safety checks over observations.
//!
//! The monitor never looks inside a protocol; it only consumes the
//! [`cluster::Replica`] observation hooks (`poll_decided` batches with
//! their absolute base position, retained decided logs, leadership epochs,
//! election audits) and cross-checks them against a global model:
//!
//! * a **position map** `absolute log position → command id`, fed by both
//!   delivered batches and retained-log scans — any two servers that ever
//!   disagree at one position violate uniform agreement (SC2), and a
//!   server whose retained log silently rewrites history collides with
//!   its own earlier reports;
//! * per-server **monotone cursors** — the delivery cursor and the
//!   decided-log length never move backwards, which is exactly "nothing
//!   acknowledged as decided is lost across crash + recovery";
//! * the **proposed set** for validity (SC1);
//! * a **leader-epoch table** `epoch → pid` for at-most-one-leader-per-
//!   epoch (term/view/ballot);
//! * per-server **election audits**, which must be strictly increasing
//!   (the paper's LE3).

use crate::NodeId;
use cluster::Replica;
use std::collections::{HashMap, HashSet};

/// A detected invariant violation: which invariant, and the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breach {
    pub invariant: &'static str,
    pub detail: String,
}

fn breach(invariant: &'static str, detail: String) -> Result<(), Breach> {
    Err(Breach { invariant, detail })
}

/// Cluster-wide invariant state, updated as the harness observes servers.
#[derive(Debug)]
pub struct Monitor {
    /// Global decided history: absolute position → command id.
    positions: HashMap<u64, u64>,
    /// Ids accepted for replication (SC1 ground truth).
    proposed: HashSet<u64>,
    /// Per-server delivery cursor after the last drain.
    cursor: Vec<u64>,
    /// Per-server highest observed decided-log length.
    decided_len: Vec<u64>,
    /// Epoch → the single pid allowed to lead under it.
    epoch_owner: HashMap<(u64, NodeId), NodeId>,
    /// Per-server set of delivered command ids (liveness probes).
    delivered: Vec<HashSet<u64>>,
}

impl Monitor {
    pub fn new(n: usize) -> Self {
        Monitor {
            positions: HashMap::new(),
            proposed: HashSet::new(),
            cursor: vec![0; n],
            decided_len: vec![0; n],
            epoch_owner: HashMap::new(),
            delivered: vec![HashSet::new(); n],
        }
    }

    /// Record a command accepted for replication.
    pub fn on_proposed(&mut self, id: u64) {
        self.proposed.insert(id);
    }

    /// Has server `pid` delivered command `id`?
    pub fn has_delivered(&self, pid: NodeId, id: u64) -> bool {
        self.delivered[(pid - 1) as usize].contains(&id)
    }

    /// Distinct decided log positions observed cluster-wide.
    pub fn decided_positions(&self) -> u64 {
        self.positions.len() as u64
    }

    /// Check one id at one absolute position against the global history.
    fn check_position(&mut self, pid: NodeId, pos: u64, id: u64) -> Result<(), Breach> {
        if !self.proposed.contains(&id) {
            return breach(
                "validity",
                format!("server {pid} decided id {id} at position {pos}, which was never proposed"),
            );
        }
        match self.positions.get(&pos) {
            Some(&prev) if prev != id => breach(
                "prefix-agreement",
                format!("position {pos}: server {pid} decided id {id}, but id {prev} was already decided there"),
            ),
            Some(_) => Ok(()),
            None => {
                self.positions.insert(pos, id);
                Ok(())
            }
        }
    }

    /// Account a drained `poll_decided` batch that started at absolute
    /// position `base`. Call with an empty batch too — the cursor check is
    /// what catches a server whose acknowledged state went backwards.
    pub fn on_decided(&mut self, pid: NodeId, base: u64, ids: &[u64]) -> Result<(), Breach> {
        let i = (pid - 1) as usize;
        if base < self.cursor[i] {
            return breach(
                "durability",
                format!(
                    "server {pid} delivery cursor moved backwards: {} -> {base} \
                     (decided state lost across recovery)",
                    self.cursor[i]
                ),
            );
        }
        for (k, &id) in ids.iter().enumerate() {
            self.check_position(pid, base + k as u64, id)?;
            self.delivered[i].insert(id);
        }
        self.cursor[i] = base + ids.len() as u64;
        Ok(())
    }

    /// Cross-check a server's retained decided log against the global
    /// history, and its length against the monotone floor.
    pub fn scan_retained(&mut self, r: &dyn Replica) -> Result<(), Breach> {
        let pid = r.pid();
        let i = (pid - 1) as usize;
        let (base, ids) = r.decided_log_ids();
        let len = base + ids.len() as u64;
        if len < self.decided_len[i] {
            return breach(
                "durability",
                format!(
                    "server {pid} decided log shrank: {} -> {len} entries",
                    self.decided_len[i]
                ),
            );
        }
        self.decided_len[i] = len;
        for (k, &id) in ids.iter().enumerate() {
            self.check_position(pid, base + k as u64, id)?;
        }
        Ok(())
    }

    /// Check a server's leadership claim and election audit.
    pub fn check_leadership(&mut self, r: &dyn Replica) -> Result<(), Breach> {
        let pid = r.pid();
        if let Some(epoch) = r.leader_epoch() {
            match self.epoch_owner.get(&epoch) {
                Some(&owner) if owner != pid => {
                    return breach(
                        "leader-epoch-uniqueness",
                        format!(
                            "servers {owner} and {pid} both claimed leadership in epoch {epoch:?}"
                        ),
                    );
                }
                Some(_) => {}
                None => {
                    self.epoch_owner.insert(epoch, pid);
                }
            }
        }
        let audit = r.audit_elections();
        for w in audit.windows(2) {
            if w[1] <= w[0] {
                return breach(
                    "election-audit",
                    format!(
                        "server {pid} elected non-increasing ballots: {:?} then {:?} (LE3)",
                        w[0], w[1]
                    ),
                );
            }
        }
        Ok(())
    }
}
