//! Chaos harness CLI.
//!
//! ```text
//! chaos --quick                     # CI gate: small sweep across all protocols
//! chaos --seeds 2000                # nightly sweep
//! chaos --seed 42 --protocol raft   # replay one run (bit-identical trace)
//! chaos --seed 42 --minimize        # shrink a failing schedule before printing
//! chaos --out chaos-failures        # also write failing traces to files
//! chaos --disk --seeds 500          # sweep with the disk-fault profile
//! chaos --disk-seeds 50             # extra disk-fault sweep after the main one
//! chaos --txn-seeds 300             # cross-shard 2PC sweep (nightly depth)
//! ```
//!
//! Exit status is 0 iff no run violated an invariant.

use chaos::{
    minimize, render_report, run, run_kv_chaos, run_read_chaos, run_shard_chaos, run_txn_chaos,
    Bug, ChaosConfig,
};
use cluster::ProtocolKind;
use kvstore::ReadMode;
use std::path::PathBuf;
use std::time::Instant;

const ALL_PROTOCOLS: [ProtocolKind; 5] = [
    ProtocolKind::OmniPaxos,
    ProtocolKind::Raft,
    ProtocolKind::RaftPvCq,
    ProtocolKind::MultiPaxos,
    ProtocolKind::Vr,
];

struct Opts {
    quick: bool,
    seeds: u64,
    base_seed: u64,
    single_seed: Option<u64>,
    protocol: Option<ProtocolKind>,
    nodes: usize,
    minimize: bool,
    out: Option<PathBuf>,
    bug: bool,
    kv_seeds: u64,
    shard_seeds: u64,
    /// Cross-shard transaction sweep: bank transfers over 2PC under
    /// partitions, crashes, disk faults, and a mid-traffic shard move.
    txn_seeds: u64,
    /// Read-mode staleness sweep: each seed runs once per read mode
    /// (log, lease, read-index) under clock skew + partitions.
    read_seeds: u64,
    /// Run the primary sweep (and any `--seed` replay) under the
    /// disk-fault schedule profile.
    disk: bool,
    /// Additional disk-fault-profile sweep of this many seeds per
    /// protocol, after the primary sweep.
    disk_seeds: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--quick] [--seeds N] [--base-seed S] [--seed S] \
         [--protocol omni|omni-lm|raft|raft-pvcq|multipaxos|vr] [--nodes N] \
         [--minimize] [--out DIR] [--bug] [--kv-seeds N] [--shard-seeds N] \
         [--txn-seeds N] [--read-seeds N] [--disk] [--disk-seeds N]"
    );
    std::process::exit(2);
}

fn parse_protocol(s: &str) -> ProtocolKind {
    match s {
        "omni" | "omnipaxos" | "omni-paxos" => ProtocolKind::OmniPaxos,
        "omni-lm" => ProtocolKind::OmniPaxosLeaderMigration,
        "raft" => ProtocolKind::Raft,
        "raft-pvcq" | "raftpvcq" => ProtocolKind::RaftPvCq,
        "multipaxos" | "multi-paxos" | "mp" => ProtocolKind::MultiPaxos,
        "vr" => ProtocolKind::Vr,
        other => {
            eprintln!("unknown protocol: {other}");
            usage();
        }
    }
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        seeds: 0,
        base_seed: 1,
        single_seed: None,
        protocol: None,
        nodes: 5,
        minimize: false,
        out: None,
        bug: false,
        kv_seeds: 0,
        shard_seeds: 0,
        txn_seeds: 0,
        read_seeds: 0,
        disk: false,
        disk_seeds: 0,
    };
    let mut args = std::env::args().skip(1);
    let next_num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} needs a numeric argument");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seeds" => opts.seeds = next_num(&mut args, "--seeds"),
            "--base-seed" => opts.base_seed = next_num(&mut args, "--base-seed"),
            "--seed" => opts.single_seed = Some(next_num(&mut args, "--seed")),
            "--protocol" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.protocol = Some(parse_protocol(&v));
            }
            "--nodes" => opts.nodes = next_num(&mut args, "--nodes") as usize,
            "--minimize" => opts.minimize = true,
            "--out" => opts.out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--bug" => opts.bug = true,
            "--kv-seeds" => opts.kv_seeds = next_num(&mut args, "--kv-seeds"),
            "--shard-seeds" => opts.shard_seeds = next_num(&mut args, "--shard-seeds"),
            "--txn-seeds" => opts.txn_seeds = next_num(&mut args, "--txn-seeds"),
            "--read-seeds" => opts.read_seeds = next_num(&mut args, "--read-seeds"),
            "--disk" => opts.disk = true,
            "--disk-seeds" => opts.disk_seeds = next_num(&mut args, "--disk-seeds"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if opts.quick {
        // The CI gate: a small sweep across every protocol plus a few
        // kv-store session runs, sized to finish well under a minute.
        if opts.seeds == 0 {
            opts.seeds = 20;
        }
        if opts.kv_seeds == 0 {
            opts.kv_seeds = 4;
        }
        if opts.shard_seeds == 0 {
            opts.shard_seeds = 4;
        }
        if opts.txn_seeds == 0 {
            opts.txn_seeds = 4;
        }
        if opts.read_seeds == 0 {
            opts.read_seeds = 4;
        }
        if opts.disk_seeds == 0 {
            opts.disk_seeds = 10;
        }
    }
    if opts.seeds == 0
        && opts.single_seed.is_none()
        && opts.kv_seeds == 0
        && opts.shard_seeds == 0
        && opts.txn_seeds == 0
        && opts.read_seeds == 0
        && opts.disk_seeds == 0
    {
        opts.seeds = 100;
    }
    opts
}

fn slug(p: ProtocolKind) -> &'static str {
    match p {
        ProtocolKind::OmniPaxos => "omni",
        ProtocolKind::OmniPaxosLeaderMigration => "omni-lm",
        ProtocolKind::Raft => "raft",
        ProtocolKind::RaftPvCq => "raft-pvcq",
        ProtocolKind::MultiPaxos => "multipaxos",
        ProtocolKind::Vr => "vr",
    }
}

fn main() {
    let opts = parse_opts();
    let protocols: Vec<ProtocolKind> = match opts.protocol {
        Some(p) => vec![p],
        None => ALL_PROTOCOLS.to_vec(),
    };
    if let Some(dir) = &opts.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --out dir {}: {e}", dir.display());
            std::process::exit(2);
        }
    }

    let started = Instant::now();
    let mut failures = 0u64;
    let mut total_runs = 0u64;

    let sweep = |protocols: &[ProtocolKind],
                 seeds: &[u64],
                 disk: bool,
                 failures: &mut u64,
                 total_runs: &mut u64| {
        for &protocol in protocols {
            let t0 = Instant::now();
            let mut proto_failures = 0u64;
            let mut decided_total = 0u64;
            for seed in seeds.iter().copied() {
                let mut cfg = ChaosConfig::new(protocol, seed);
                cfg.n = opts.nodes;
                cfg.disk_faults = disk;
                if opts.bug {
                    cfg.bug = Some(Bug::AckBeforePersist);
                }
                let report = run(&cfg);
                *total_runs += 1;
                decided_total += report.decided_positions;
                if report.violation.is_some() {
                    *failures += 1;
                    proto_failures += 1;
                    let mut rendered = render_report(&report);
                    if opts.minimize {
                        let reduced = minimize(&cfg, &report.schedule);
                        let replay = chaos::run_schedule(&cfg, &reduced);
                        rendered.push_str("\n--- minimized schedule ---\n");
                        rendered.push_str(&render_report(&replay));
                    }
                    eprintln!("{rendered}");
                    if let Some(dir) = &opts.out {
                        let disk_tag = if disk { "disk-" } else { "" };
                        let path = dir.join(format!("{disk_tag}{}-seed{seed}.txt", slug(protocol)));
                        if let Err(e) = std::fs::write(&path, &rendered) {
                            eprintln!("cannot write {}: {e}", path.display());
                        } else {
                            eprintln!("trace written to {}", path.display());
                        }
                    }
                }
            }
            println!(
                "{:<34} {:>5} runs  {:>3} failed  {:>8} decided positions  {:>6.1}s",
                format!("{}{}", protocol.name(), if disk { " [disk]" } else { "" }),
                seeds.len(),
                proto_failures,
                decided_total,
                t0.elapsed().as_secs_f64()
            );
        }
    };

    if opts.seeds > 0 || opts.single_seed.is_some() {
        let seeds: Vec<u64> = match opts.single_seed {
            Some(s) => vec![s],
            None => (opts.base_seed..opts.base_seed + opts.seeds).collect(),
        };
        sweep(
            &protocols,
            &seeds,
            opts.disk,
            &mut failures,
            &mut total_runs,
        );
    }

    if opts.disk_seeds > 0 {
        let seeds: Vec<u64> = (opts.base_seed..opts.base_seed + opts.disk_seeds).collect();
        sweep(&protocols, &seeds, true, &mut failures, &mut total_runs);
    }

    if opts.kv_seeds > 0 {
        let t0 = Instant::now();
        let mut kv_failures = 0u64;
        for seed in opts.base_seed..opts.base_seed + opts.kv_seeds {
            total_runs += 1;
            match run_kv_chaos(seed) {
                Ok(stats) => {
                    println!(
                        "kv chaos seed {seed}: ok ({} submitted, {} retries, {} applied, \
                         converged in {} ticks)",
                        stats.submitted, stats.duplicates, stats.applied, stats.converge_ticks
                    );
                }
                Err(e) => {
                    failures += 1;
                    kv_failures += 1;
                    let rendered = format!("kv chaos seed {seed} FAILED: {e}");
                    eprintln!("{rendered}");
                    if let Some(dir) = &opts.out {
                        let path = dir.join(format!("kv-seed{seed}.txt"));
                        let _ = std::fs::write(&path, &rendered);
                    }
                }
            }
        }
        println!(
            "{:<34} {:>5} runs  {:>3} failed  {:>27} {:>6.1}s",
            "kv store (sessions)",
            opts.kv_seeds,
            kv_failures,
            "",
            t0.elapsed().as_secs_f64()
        );
    }

    if opts.read_seeds > 0 {
        const MODES: [(ReadMode, &str); 3] = [
            (ReadMode::Log, "log"),
            (ReadMode::Lease, "lease"),
            (ReadMode::ReadIndex, "read-index"),
        ];
        for (mode, name) in MODES {
            let t0 = Instant::now();
            let mut read_failures = 0u64;
            let mut served = 0u64;
            for seed in opts.base_seed..opts.base_seed + opts.read_seeds {
                total_runs += 1;
                match run_read_chaos(seed, mode) {
                    Ok(stats) => {
                        served += stats.reads_served;
                        if opts.read_seeds <= 8 {
                            println!(
                                "read chaos [{name}] seed {seed}: ok ({} writes, {} reads, \
                                 {} served, {} expired, converged in {} ticks)",
                                stats.writes,
                                stats.reads_issued,
                                stats.reads_served,
                                stats.reads_expired,
                                stats.converge_ticks
                            );
                        }
                    }
                    Err(e) => {
                        failures += 1;
                        read_failures += 1;
                        let rendered = format!("read chaos [{name}] seed {seed} FAILED: {e}");
                        eprintln!("{rendered}");
                        if let Some(dir) = &opts.out {
                            let path = dir.join(format!("read-{name}-seed{seed}.txt"));
                            let _ = std::fs::write(&path, &rendered);
                        }
                    }
                }
            }
            println!(
                "{:<34} {:>5} runs  {:>3} failed  {:>15} reads served  {:>6.1}s",
                format!("read modes [{name}]"),
                opts.read_seeds,
                read_failures,
                served,
                t0.elapsed().as_secs_f64()
            );
        }
    }

    if opts.shard_seeds > 0 {
        let t0 = Instant::now();
        let mut shard_failures = 0u64;
        let mut moves = 0u64;
        for seed in opts.base_seed..opts.base_seed + opts.shard_seeds {
            total_runs += 1;
            match run_shard_chaos(seed) {
                Ok(stats) => {
                    if let Some(s) = stats.migrated_shard {
                        moves += 1;
                        println!(
                            "shard chaos seed {seed}: ok ({} submitted, {} retries, {} \
                             applied, shard {s} migrated, converged in {} ticks)",
                            stats.submitted, stats.duplicates, stats.applied, stats.converge_ticks
                        );
                    } else {
                        println!(
                            "shard chaos seed {seed}: ok ({} submitted, {} retries, {} \
                             applied, converged in {} ticks)",
                            stats.submitted, stats.duplicates, stats.applied, stats.converge_ticks
                        );
                    }
                }
                Err(e) => {
                    failures += 1;
                    shard_failures += 1;
                    let rendered = format!("shard chaos seed {seed} FAILED: {e}");
                    eprintln!("{rendered}");
                    if let Some(dir) = &opts.out {
                        let path = dir.join(format!("shard-seed{seed}.txt"));
                        let _ = std::fs::write(&path, &rendered);
                    }
                }
            }
        }
        println!(
            "{:<34} {:>5} runs  {:>3} failed  {:>15} shard moves  {:>6.1}s",
            "sharded kv (multi-group)",
            opts.shard_seeds,
            shard_failures,
            moves,
            t0.elapsed().as_secs_f64()
        );
    }

    if opts.txn_seeds > 0 {
        let t0 = Instant::now();
        let mut txn_failures = 0u64;
        let mut committed = 0u64;
        let mut aborted = 0u64;
        for seed in opts.base_seed..opts.base_seed + opts.txn_seeds {
            total_runs += 1;
            match run_txn_chaos(seed) {
                Ok(stats) => {
                    committed += stats.committed;
                    aborted += stats.aborted;
                    if opts.txn_seeds <= 8 {
                        println!(
                            "txn chaos seed {seed}: ok ({} txns, {} cross-shard, {} \
                             committed, {} aborted, {} disk faults{}, converged in {} ticks)",
                            stats.submitted,
                            stats.cross_shard,
                            stats.committed,
                            stats.aborted,
                            stats.disk_faults,
                            match stats.migrated_shard {
                                Some(s) => format!(", shard {s} migrated"),
                                None => String::new(),
                            },
                            stats.converge_ticks
                        );
                    }
                }
                Err(e) => {
                    failures += 1;
                    txn_failures += 1;
                    let rendered = format!("txn chaos seed {seed} FAILED: {e}");
                    eprintln!("{rendered}");
                    if let Some(dir) = &opts.out {
                        let path = dir.join(format!("txn-seed{seed}.txt"));
                        let _ = std::fs::write(&path, &rendered);
                    }
                }
            }
        }
        println!(
            "{:<34} {:>5} runs  {:>3} failed  {:>10} committed / {} aborted  {:>6.1}s",
            "cross-shard txns (2pc)",
            opts.txn_seeds,
            txn_failures,
            committed,
            aborted,
            t0.elapsed().as_secs_f64()
        );
    }

    println!(
        "chaos: {total_runs} runs, {failures} failed, {:.1}s total",
        started.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
