//! Chaos over the *sharded* key-value store: many Omni-Paxos groups on
//! shared sessions, under per-shard fault schedules.
//!
//! [`kv_chaos`](crate::kv_chaos) checks the session contract of one
//! group; this module checks what sharding adds on top:
//!
//! * **per-shard exactly-once** — `(shard, client, seq)` applies at most
//!   once per node, even though all shards ride the same links and the
//!   same crashes;
//! * **no shard lost** — after heal, every shard still has a leader and
//!   decides a fresh probe write;
//! * **routing converges** — after heal, all live nodes agree on every
//!   shard's leader;
//! * **per-shard convergence** — each shard's replicas (its *own*
//!   membership, which may have changed mid-run) reach identical state
//!   machines and session tables, and no session table runs ahead of
//!   what clients actually issued on that shard;
//! * **mid-traffic shard moves** — on half the seeds, one shard is
//!   snapshot-first migrated onto a standby joiner (donors compact, then
//!   the leader proposes the new membership) while faults and traffic
//!   continue on every other shard.

use kvstore::{shard_of_key, KvCommand, KvOp, NodeId, ShardedKvNode};
use omnipaxos::service::ServiceMsg;
use simulator::{Network, NetworkConfig, Rng};
use std::collections::{HashMap, HashSet};

const TICK_US: u64 = 1_000;

/// Per-node verdict history: (shard, client, seq) -> the value the first
/// applied report carried. A duplicate applied report is legal only if
/// its value is identical (verdict consistency, not strict exactly-once:
/// txn records legitimately re-report their recorded outcome).
type VerdictMap = HashMap<(u32, u64, u64), Option<i64>>;
/// Voting members; node `JOINER` idles until a shard is moved onto it.
const N: usize = 3;
const JOINER: NodeId = 4;
const SHARDS: usize = 4;

/// Statistics of a passing sharded chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardChaosStats {
    pub submitted: u64,
    pub duplicates: u64,
    pub applied: u64,
    /// Which shard was snapshot-migrated onto the joiner (if this seed
    /// scheduled a move and the cluster actually executed it).
    pub migrated_shard: Option<u32>,
    pub converge_ticks: u64,
}

/// Run one seeded sharded chaos schedule; `Err` describes the violated
/// invariant.
pub fn run_shard_chaos(seed: u64) -> Result<ShardChaosStats, String> {
    let members: Vec<NodeId> = (1..=N as NodeId).collect();
    let all_ids: Vec<NodeId> = (1..=JOINER).collect();
    let mut nodes: Vec<ShardedKvNode> = members
        .iter()
        .map(|&p| ShardedKvNode::new(p, members.clone(), SHARDS))
        .collect();
    nodes.push(ShardedKvNode::joiner(JOINER, SHARDS));
    let mut net: Network<ServiceMsg<KvCommand>> = Network::new(NetworkConfig {
        nodes: all_ids.clone(),
        default_latency_us: 100,
        jitter_us: 0,
        nic_bytes_per_sec: None,
        priority_bytes: 256,
        seed,
    });
    let mut rng = Rng::seed_from_u64(seed ^ 0x5AAD_C4A0);
    let mut crashed: HashSet<NodeId> = HashSet::new();
    let mut cut: Vec<(NodeId, NodeId)> = Vec::new();
    // Per (client, shard) sequence spaces — shards have independent
    // session tables, so seqs restart per shard like the sharded client's.
    let mut next_seq: HashMap<(u64, u32), u64> = HashMap::new();
    let mut recent: HashMap<(u64, u32), Vec<KvCommand>> = HashMap::new();
    // Per node: the verdict value reported for each applied (shard,
    // client, seq). A duplicate report of the latest seq replays the
    // cached verdict and is legal; a *different* verdict means the op
    // re-executed instead of replaying.
    let mut applied_seen: Vec<VerdictMap> = vec![HashMap::new(); N + 1];
    let mut stats = ShardChaosStats {
        submitted: 0,
        duplicates: 0,
        applied: 0,
        migrated_shard: None,
        converge_ticks: 0,
    };
    // Half the seeds schedule a mid-traffic snapshot-first shard move.
    let move_plan: Option<(u32, NodeId)> = if seed.is_multiple_of(2) {
        let shard = (seed / 2 % SHARDS as u64) as u32;
        let donor = 1 + (seed / 8 % N as u64) as NodeId;
        Some((shard, donor))
    } else {
        None
    };

    let step = |t: u64,
                nodes: &mut Vec<ShardedKvNode>,
                net: &mut Network<ServiceMsg<KvCommand>>,
                crashed: &HashSet<NodeId>,
                applied_seen: &mut Vec<VerdictMap>,
                stats: &mut ShardChaosStats|
     -> Result<(), String> {
        let deadline = t * TICK_US;
        while let Some(d) = net.pop_next_before(deadline) {
            if !crashed.contains(&d.dst) {
                nodes[(d.dst - 1) as usize].handle(d.src, d.msg);
            }
        }
        net.advance_to(deadline);
        for (i, node) in nodes.iter_mut().enumerate() {
            let pid = (i + 1) as NodeId;
            let out = node.outgoing();
            if crashed.contains(&pid) {
                continue;
            }
            node.tick();
            for (to, msg) in out {
                let bytes = msg.size_bytes();
                net.send(pid, to, bytes, msg);
            }
            for (shard, r) in node.take_results() {
                if r.applied {
                    if let Some(prev) = applied_seen[i].get(&(shard, r.client, r.seq)) {
                        if *prev != r.value {
                            return Err(format!(
                                "verdict instability: node {pid} shard {shard} reported \
                                 ({}, {}) applied with {:?}, then {:?}",
                                r.client, r.seq, prev, r.value
                            ));
                        }
                    } else {
                        applied_seen[i].insert((shard, r.client, r.seq), r.value);
                        stats.applied += 1;
                    }
                }
            }
        }
        Ok(())
    };

    // Keys owned by each shard, so the workload can target one.
    let mut shard_keys: Vec<Vec<String>> = vec![Vec::new(); SHARDS];
    for i in 0..64 {
        let k = format!("k{i}");
        shard_keys[shard_of_key(&k, SHARDS) as usize].push(k);
    }

    // Fault + workload phase.
    for t in 1..=1_500u64 {
        // Faults, low-rate. Link cuts and crashes hit the whole node
        // (shards share the process and its sessions); compaction is a
        // per-shard fault.
        if rng.chance(0.01) {
            let a = rng.range_inclusive(1, N as u64);
            let b = 1 + (a % N as u64);
            match rng.below(4) {
                0 => {
                    net.links_mut().set_link(a, b, false);
                    cut.push((a, b));
                }
                1 => {
                    if let Some((x, y)) = cut.pop() {
                        if net.links_mut().set_link(x, y, true) {
                            nodes[(x - 1) as usize].reconnected(y);
                            nodes[(y - 1) as usize].reconnected(x);
                        }
                    }
                }
                2 => {
                    if crashed.insert(a) {
                        net.drop_in_flight_for(a);
                    }
                }
                _ => {
                    if crashed.remove(&a) {
                        nodes[(a - 1) as usize].fail_recovery();
                    } else {
                        let s = rng.below(SHARDS as u64) as u32;
                        let _ = nodes[(a - 1) as usize].compact(s);
                    }
                }
            }
        }
        // Mid-traffic snapshot-first shard move: donors compact the
        // shard, then its leader proposes membership with the joiner
        // replacing the donor. Every other shard keeps its faults and
        // traffic; nothing here pauses them.
        if t == 750 {
            if let Some((shard, donor)) = move_plan {
                let mut new_nodes: Vec<NodeId> =
                    members.iter().copied().filter(|&p| p != donor).collect();
                new_nodes.push(JOINER);
                new_nodes.sort_unstable();
                for (i, node) in nodes.iter_mut().enumerate().take(N) {
                    if !crashed.contains(&((i + 1) as NodeId)) {
                        let _ = node.compact(shard);
                    }
                }
                // Propose the move; whether it lands is the cluster's
                // call (a crashed leader may legally lose the proposal),
                // so `migrated_shard` is read back from the final
                // membership below, not assumed here.
                if let Some(li) = (0..N)
                    .find(|&i| !crashed.contains(&((i + 1) as NodeId)) && nodes[i].is_leader(shard))
                {
                    let _ = nodes[li].reconfigure(shard, new_nodes);
                }
            }
        }
        // Workload: windowed bursts + deliberate retries, spread over all
        // shards (each command routed to its shard's live leader).
        if t % 5 == 0 {
            let client = rng.range_inclusive(1, 2);
            let shard = rng.below(SHARDS as u64) as u32;
            let leader = (0..nodes.len())
                .find(|&i| !crashed.contains(&((i + 1) as NodeId)) && nodes[i].is_leader(shard));
            if let Some(li) = leader {
                let window = recent.entry((client, shard)).or_default();
                if rng.chance(0.3) && !window.is_empty() {
                    let idx = rng.below(window.len() as u64) as usize;
                    stats.duplicates += 1;
                    if nodes[li].submit_batch(shard, [window[idx].clone()]).is_ok() {
                        stats.submitted += 1;
                    }
                } else {
                    let burst = rng.range_inclusive(1, 4);
                    for _ in 0..burst {
                        let seq = next_seq.entry((client, shard)).or_insert(1);
                        let s = *seq;
                        *seq += 1;
                        let keys = &shard_keys[shard as usize];
                        let c = KvCommand {
                            client,
                            seq: s,
                            op: KvOp::Add {
                                key: keys[rng.below(keys.len() as u64) as usize].clone(),
                                delta: rng.range_inclusive(1, 9) as i64,
                            },
                        };
                        window.push(c.clone());
                        if window.len() > 16 {
                            window.remove(0);
                        }
                        if nodes[li].submit_batch(shard, [c]).is_ok() {
                            stats.submitted += 1;
                        }
                    }
                }
            }
        }
        step(
            t,
            &mut nodes,
            &mut net,
            &crashed,
            &mut applied_seen,
            &mut stats,
        )?;
    }

    // Heal everything and require every cross-shard invariant.
    for (x, y) in cut.drain(..) {
        if net.links_mut().set_link(x, y, true) {
            nodes[(x - 1) as usize].reconnected(y);
            nodes[(y - 1) as usize].reconnected(x);
        }
    }
    let down: Vec<NodeId> = crashed.drain().collect();
    for p in down {
        nodes[(p - 1) as usize].fail_recovery();
    }

    // Membership per shard is whatever the cluster actually decided (a
    // scheduled move may have been cut short by a crash): read it from
    // each shard's leader once one exists.
    let mut converged_at = None;
    for t in 1_501..=8_000u64 {
        step(
            t,
            &mut nodes,
            &mut net,
            &crashed,
            &mut applied_seen,
            &mut stats,
        )?;
        if t % 16 == 0 && all_shards_converged(&nodes) {
            converged_at = Some(t - 1_500);
            break;
        }
    }
    let Some(converge_ticks) = converged_at else {
        return Err(format!(
            "sharded replicas did not converge after heal: {}",
            diagnose(&nodes)
        ));
    };
    stats.converge_ticks = converge_ticks;

    // A scheduled move counts as migrated only if the cluster actually
    // decided it: the joiner serves the shard now.
    if let Some((shard, _)) = move_plan {
        if membership_of(&nodes, shard).contains(&JOINER) {
            stats.migrated_shard = Some(shard);
        }
    }

    // Session tables never run ahead of what clients issued on that shard.
    for s in 0..SHARDS as u32 {
        for n in &nodes {
            for (client, entry) in n.shard(s).state_machine().sessions() {
                let issued = next_seq.get(&(*client, s)).map(|q| q - 1).unwrap_or(0);
                if entry.seq > issued {
                    return Err(format!(
                        "shard {s} session table ahead of reality on node {}: client \
                         {client} at seq {}, only {issued} issued",
                        n.pid(),
                        entry.seq
                    ));
                }
            }
        }
    }

    // No shard lost: a fresh probe write per shard must decide at every
    // member of that shard's (possibly migrated) membership. Memberships
    // are pinned here — routing already converged, so they are final.
    let mut probe_pending: Vec<(u32, String, Vec<NodeId>, KvCommand)> = Vec::new();
    for s in 0..SHARDS as u32 {
        if !nodes.iter().any(|n| n.is_leader(s)) {
            return Err(format!("shard {s} lost: no leader after heal"));
        }
        let members = membership_of(&nodes, s);
        if members.is_empty() {
            return Err(format!("shard {s} lost: empty membership after heal"));
        }
        let key = shard_keys[s as usize][0].clone();
        let seq = next_seq.entry((9, s)).or_insert(1);
        let cmd = KvCommand {
            client: 9,
            seq: *seq,
            op: KvOp::Put {
                key: key.clone(),
                value: 777_000 + s as i64,
            },
        };
        *seq += 1;
        probe_pending.push((s, key, members, cmd));
    }
    for t in 8_001..=9_500u64 {
        // (Re)submit outstanding probes to the current leader, like a
        // retrying client would: a leader may accept a proposal and then
        // lose leadership before replicating it, which legally drops the
        // proposal — session dedup makes the retry exactly-once.
        if t % 100 == 1 {
            for (s, _, _, cmd) in &probe_pending {
                if let Some(li) = nodes.iter().position(|n| n.is_leader(*s)) {
                    let _ = nodes[li].submit_batch(*s, [cmd.clone()]);
                }
            }
        }
        step(
            t,
            &mut nodes,
            &mut net,
            &crashed,
            &mut applied_seen,
            &mut stats,
        )?;
        probe_pending.retain(|(s, key, members, _)| {
            !members
                .iter()
                .all(|&p| nodes[(p - 1) as usize].read_local(key) == Some(777_000 + *s as i64))
        });
        if probe_pending.is_empty() {
            break;
        }
    }
    if !probe_pending.is_empty() {
        let lost: Vec<u32> = probe_pending.iter().map(|(s, _, _, _)| *s).collect();
        let detail: Vec<String> = probe_pending
            .iter()
            .map(|(s, key, members, _)| {
                let reads: Vec<_> = members
                    .iter()
                    .map(|&p| {
                        let n = &nodes[(p - 1) as usize];
                        (
                            p,
                            n.read_local(key),
                            n.shard(*s).server_ref().decided_len(),
                            n.shard(*s)
                                .state_machine()
                                .sessions()
                                .get(&9)
                                .map(|e| e.seq),
                        )
                    })
                    .collect();
                format!(
                    "shard {s} key {key} members {members:?} (pid, read, decided, c9) {reads:?}"
                )
            })
            .collect();
        return Err(format!(
            "shards {lost:?} lost: probe writes never decided ({}; {})",
            detail.join("; "),
            diagnose(&nodes)
        ));
    }
    Ok(stats)
}

/// The membership of shard `s` as the cluster itself reports it (via the
/// shard's current leader).
fn membership_of(nodes: &[ShardedKvNode], s: u32) -> Vec<NodeId> {
    nodes
        .iter()
        .find(|n| n.is_leader(s))
        .map(|n| n.shard(s).server_ref().nodes().to_vec())
        .unwrap_or_default()
}

/// Every shard has a leader, all members of its membership hold
/// identical state machines (map *and* session table), and routing has
/// converged: every member's view of the shard's leader is the same
/// non-zero node. Non-members (a donor after a move, an unused joiner)
/// are out of the shard's routing domain and are not consulted.
fn all_shards_converged(nodes: &[ShardedKvNode]) -> bool {
    for s in 0..SHARDS as u32 {
        let members = membership_of(nodes, s);
        if members.is_empty() {
            return false;
        }
        let views: HashSet<NodeId> = members
            .iter()
            .map(|&p| nodes[(p - 1) as usize].leader_of(s))
            .collect();
        if views.len() != 1 || views.contains(&0) {
            return false;
        }
        let first = nodes[(members[0] - 1) as usize].shard(s).state_machine();
        if !members[1..]
            .iter()
            .all(|&p| nodes[(p - 1) as usize].shard(s).state_machine() == first)
        {
            return false;
        }
    }
    true
}

/// One line per shard for the did-not-converge error.
fn diagnose(nodes: &[ShardedKvNode]) -> String {
    (0..SHARDS as u32)
        .map(|s| {
            let members = membership_of(nodes, s);
            let views: Vec<NodeId> = members
                .iter()
                .map(|&p| nodes[(p - 1) as usize].leader_of(s))
                .collect();
            format!("shard {s}: members {members:?} leader views {views:?}")
        })
        .collect::<Vec<_>>()
        .join("; ")
}
