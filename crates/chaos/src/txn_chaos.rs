//! Chaos over cross-shard transactions: a bank of accounts spread over
//! the sharded store, moved between by 2PC transfers (DESIGN.md §15)
//! while partitions, crashes, disk faults, and a mid-traffic shard
//! migration attack every layer underneath.
//!
//! [`shard_chaos`](crate::shard_chaos) checks each shard's session
//! contract in isolation; this module checks what *cross-shard
//! atomicity* adds on top. The workload is transfers between random
//! accounts — some same-shard, most spanning two shards — driven by one
//! [`TxnCoordinator`] per node, with deliberately overdrawn transfers
//! mixed in so both the commit and the abort path run under fire. A
//! crashed node loses its coordinator (the replacement starts empty,
//! like a restarted gateway), so orphan recovery by the survivors'
//! stale-prepare scanners is exercised, not just simulated.
//!
//! After the schedule heals, the run must reach a state where:
//!
//! * **balances match the decision log** — for every transaction the
//!   coordinator shard's replicated decision map is the ground truth;
//!   each account's balance must equal its opening balance plus exactly
//!   the committed transfers that touch it, at every replica of its
//!   shard. A transaction with no recorded decision must have had no
//!   effect (its prepares either never applied or were aborted by the
//!   scanner);
//! * **money is conserved** — the sum over all accounts equals the sum
//!   of the opening balances, i.e. no committed transfer was half
//!   applied and no aborted transfer leaked a side effect;
//! * **no orphaned prepares survive** — every per-key lock and staged
//!   prepare is resolved once the cluster heals, however the
//!   coordinator that created it died;
//! * **coordinator verdicts agree with the log** — an outcome reported
//!   to a client must match the decision the cluster recorded;
//! * **per-shard convergence** — each shard's replicas end bit-identical
//!   (map, sessions, and transaction state), its session table never
//!   runs ahead of what clients issued, and every coordinator retires
//!   every run it started.
//!
//! Disk faults use the real [`FaultyStorage`] failpoints (failed fsync,
//! short write, ENOSPC, detected corruption, crash mid-checkpoint): a
//! shard whose storage fails halts fail-stop mid-transaction — possibly
//! between its prepare vote and the commit record — and recovers by
//! storage rollback + resync, the same path a real deployment takes.

use crate::NodeId;
use kvstore::{
    shard_config, shard_of_key, KvCommand, KvNode, KvOp, ShardedKvNode, TxnCoordinator, TxnId,
    TxnSpec, TXN_CLIENT_FLAG,
};
use omnipaxos::service::{OmniPaxosServer, ServerConfig, ServiceMsg};
use omnipaxos::{FaultyStorage, MemoryStorage, StorageFaultKind};
use simulator::{Network, NetworkConfig, Rng};
use std::collections::{HashMap, HashSet};

const TICK_US: u64 = 1_000;
/// Voting members; node `JOINER` idles until a shard is moved onto it.
const N: usize = 3;
const JOINER: NodeId = 4;
const SHARDS: usize = 4;
/// Bank accounts, hashed over the shards.
const ACCOUNTS: usize = 8;
const OPENING: i64 = 1_000;
/// Client ids: transactions, funding puts, and plain-write noise.
const TXN_CLIENT: u64 = 7;
const FUND_CLIENT: u64 = 5;
const NOISE_CLIENT: u64 = 2;

/// Per-node verdict history, as in `shard_chaos`: duplicate applied
/// reports are legal iff they carry the identical value.
type VerdictMap = HashMap<(u32, u64, u64), Option<i64>>;
type Store = FaultyStorage<KvCommand, MemoryStorage<KvCommand>>;
type Node = ShardedKvNode<Store>;

/// Statistics of a passing transaction chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnChaosStats {
    /// Transactions begun (committed + aborted + never-prepared).
    pub submitted: u64,
    pub committed: u64,
    pub aborted: u64,
    /// How many submitted transactions spanned two shards.
    pub cross_shard: u64,
    /// Disk failpoints armed during the run.
    pub disk_faults: u64,
    /// Which shard was migrated onto the joiner mid-traffic, if the
    /// cluster actually decided the move.
    pub migrated_shard: Option<u32>,
    pub converge_ticks: u64,
}

fn make_node(pid: NodeId, nodes: &[NodeId]) -> Node {
    let shards = (0..SHARDS as u32)
        .map(|s| {
            KvNode::from_server(OmniPaxosServer::with_storage(
                shard_config(&ServerConfig::with(pid), s, nodes),
                nodes.to_vec(),
                Store::default(),
            ))
        })
        .collect();
    ShardedKvNode::from_shards(shards)
}

fn make_joiner(pid: NodeId) -> Node {
    let shards = (0..SHARDS)
        .map(|_| KvNode::from_server(OmniPaxosServer::new_joiner(ServerConfig::with(pid))))
        .collect();
    ShardedKvNode::from_shards(shards)
}

/// Run one seeded transaction chaos schedule; `Err` describes the
/// violated invariant.
pub fn run_txn_chaos(seed: u64) -> Result<TxnChaosStats, String> {
    let members: Vec<NodeId> = (1..=N as NodeId).collect();
    let all_ids: Vec<NodeId> = (1..=JOINER).collect();
    let mut nodes: Vec<Node> = members.iter().map(|&p| make_node(p, &members)).collect();
    nodes.push(make_joiner(JOINER));
    let mut coords: Vec<TxnCoordinator> = all_ids.iter().map(|&p| TxnCoordinator::new(p)).collect();
    // Restart counter per node: each gateway incarnation gets a fresh
    // coordinator identity (see `TxnCoordinator::with_nonce`).
    let mut incarnation = vec![0u32; all_ids.len()];
    let mut net: Network<ServiceMsg<KvCommand>> = Network::new(NetworkConfig {
        nodes: all_ids.clone(),
        default_latency_us: 100,
        jitter_us: 0,
        nic_bytes_per_sec: None,
        priority_bytes: 256,
        seed,
    });
    let mut rng = Rng::seed_from_u64(seed ^ 0x7A4B_ACC7);
    let mut crashed: HashSet<NodeId> = HashSet::new();
    let mut cut: Vec<(NodeId, NodeId)> = Vec::new();
    // Per node: the verdict reported for each applied (shard, client,
    // seq) — replays and cached-verdict retransmits must re-report the
    // *same* verdict or an op re-executed instead of deduplicating.
    let mut applied_seen: Vec<VerdictMap> = vec![HashMap::new(); N + 1];
    // Outcomes the coordinators reported to their (simulated) clients.
    let mut outcomes: HashMap<TxnId, bool> = HashMap::new();
    // Every transaction this run ever began: txn -> (from, to, amount).
    let mut ledger: HashMap<TxnId, (usize, usize, i64)> = HashMap::new();
    let mut next_txn = 1u64;
    let mut noise_seq: HashMap<u32, u64> = HashMap::new();
    let mut stats = TxnChaosStats {
        submitted: 0,
        committed: 0,
        aborted: 0,
        cross_shard: 0,
        disk_faults: 0,
        migrated_shard: None,
        converge_ticks: 0,
    };

    let accounts: Vec<String> = (0..ACCOUNTS).map(|i| format!("acct{i}")).collect();
    let acct_shard: Vec<u32> = accounts.iter().map(|a| shard_of_key(a, SHARDS)).collect();
    // Funding seq per account: its rank within its shard (per-shard
    // session spaces), stable across retries.
    let mut fund_seq = [0u64; ACCOUNTS];
    for s in 0..SHARDS as u32 {
        let mut q = 0;
        for i in 0..ACCOUNTS {
            if acct_shard[i] == s {
                q += 1;
                fund_seq[i] = q;
            }
        }
    }
    // Half the seeds schedule a mid-traffic snapshot-first shard move.
    let move_plan: Option<(u32, NodeId)> = if seed.is_multiple_of(2) {
        let shard = (seed / 2 % SHARDS as u64) as u32;
        let donor = 1 + (seed / 8 % N as u64) as NodeId;
        Some((shard, donor))
    } else {
        None
    };

    let step = |t: u64,
                nodes: &mut Vec<Node>,
                coords: &mut Vec<TxnCoordinator>,
                net: &mut Network<ServiceMsg<KvCommand>>,
                crashed: &HashSet<NodeId>,
                applied_seen: &mut Vec<VerdictMap>,
                outcomes: &mut HashMap<TxnId, bool>|
     -> Result<(), String> {
        let deadline = t * TICK_US;
        while let Some(d) = net.pop_next_before(deadline) {
            if !crashed.contains(&d.dst) {
                nodes[(d.dst - 1) as usize].handle(d.src, d.msg);
            }
        }
        net.advance_to(deadline);
        for i in 0..nodes.len() {
            let pid = (i + 1) as NodeId;
            let out = nodes[i].outgoing();
            if crashed.contains(&pid) {
                continue;
            }
            nodes[i].tick();
            for (to, msg) in out {
                let bytes = msg.size_bytes();
                net.send(pid, to, bytes, msg);
            }
            let results = nodes[i].take_results();
            for (shard, r) in &results {
                // Coordinator-issued records are outside the session
                // table (idempotent by txn id, seqs private to each
                // coordinator *incarnation* — a restarted gateway reuses
                // them), so per-(client, seq) verdict stability is only
                // an invariant for session-deduped clients.
                if r.client & TXN_CLIENT_FLAG != 0 {
                    continue;
                }
                if r.applied {
                    if let Some(prev) = applied_seen[i].get(&(*shard, r.client, r.seq)) {
                        if *prev != r.value {
                            return Err(format!(
                                "verdict instability: node {pid} shard {shard} reported \
                                 ({}, {}) applied with {:?}, then {:?}",
                                r.client, r.seq, prev, r.value
                            ));
                        }
                    } else {
                        applied_seen[i].insert((*shard, r.client, r.seq), r.value);
                    }
                }
            }
            coords[i].observe(&mut nodes[i], &results);
            coords[i].tick(&mut nodes[i]);
            for o in coords[i].take_outcomes() {
                if let Some(prev) = outcomes.insert(o.txn, o.committed) {
                    if prev != o.committed {
                        return Err(format!(
                            "verdict instability: txn {:?} reported committed={prev} \
                             then committed={}",
                            o.txn, o.committed
                        ));
                    }
                }
            }
        }
        Ok(())
    };

    // Calm start: elect per-shard leaders, then fund every account and
    // wait until all voting members hold the opening balances.
    let mut funded = false;
    for t in 1..=800u64 {
        if t >= 200 && t % 40 == 0 {
            for i in 0..ACCOUNTS {
                let s = acct_shard[i];
                if members
                    .iter()
                    .all(|&p| nodes[(p - 1) as usize].read_local(&accounts[i]) == Some(OPENING))
                {
                    continue;
                }
                if let Some(li) = (0..N).find(|&j| nodes[j].is_leader(s)) {
                    let _ = nodes[li].submit_batch(
                        s,
                        [KvCommand {
                            client: FUND_CLIENT,
                            seq: fund_seq[i],
                            op: KvOp::Put {
                                key: accounts[i].clone(),
                                value: OPENING,
                            },
                        }],
                    );
                }
            }
        }
        step(
            t,
            &mut nodes,
            &mut coords,
            &mut net,
            &crashed,
            &mut applied_seen,
            &mut outcomes,
        )?;
        if t >= 240
            && t % 40 == 8
            && (0..ACCOUNTS).all(|i| {
                members
                    .iter()
                    .all(|&p| nodes[(p - 1) as usize].read_local(&accounts[i]) == Some(OPENING))
            })
        {
            funded = true;
            break;
        }
    }
    if !funded {
        return Err("setup failed: accounts not funded in a calm cluster".into());
    }

    // Fault + transaction phase.
    for t in 801..=2_300u64 {
        if rng.chance(0.01) {
            let a = rng.range_inclusive(1, N as u64);
            let b = 1 + (a % N as u64);
            match rng.below(5) {
                0 => {
                    net.links_mut().set_link(a, b, false);
                    cut.push((a, b));
                }
                1 => {
                    if let Some((x, y)) = cut.pop() {
                        if net.links_mut().set_link(x, y, true) {
                            nodes[(x - 1) as usize].reconnected(y);
                            nodes[(y - 1) as usize].reconnected(x);
                        }
                    }
                }
                2 => {
                    if crashed.insert(a) {
                        net.drop_in_flight_for(a);
                    }
                }
                3 => {
                    if crashed.remove(&a) {
                        nodes[(a - 1) as usize].fail_recovery();
                        // The gateway process died with the node: its
                        // replacement coordinator starts empty (with a
                        // fresh incarnation identity), and the survivors'
                        // scanners own whatever it abandoned.
                        incarnation[(a - 1) as usize] += 1;
                        coords[(a - 1) as usize] =
                            TxnCoordinator::with_nonce(a, incarnation[(a - 1) as usize]);
                    } else {
                        let s = rng.below(SHARDS as u64) as u32;
                        let _ = nodes[(a - 1) as usize].compact(s);
                    }
                }
                _ => {
                    // Arm a disk failpoint at one shard's storage: the
                    // next matching operation fails and the shard halts
                    // fail-stop until a later fail-recovery.
                    if !crashed.contains(&a) {
                        let kind = match rng.below(5) {
                            0 => StorageFaultKind::SyncFailed,
                            1 => StorageFaultKind::ShortWrite,
                            2 => StorageFaultKind::NoSpace,
                            3 => StorageFaultKind::Corruption,
                            _ => StorageFaultKind::CheckpointCrash,
                        };
                        let s = rng.below(SHARDS as u64) as u32;
                        if let Some(omni) = nodes[(a - 1) as usize].shard_mut(s).server().omni() {
                            omni.sequence_paxos().storage().arm(kind);
                            stats.disk_faults += 1;
                        }
                    }
                }
            }
        }
        // Mid-traffic snapshot-first shard move (as in shard_chaos):
        // donors compact, then the leader proposes membership with the
        // joiner replacing the donor. Transactions keep flowing.
        if t == 1_550 {
            if let Some((shard, donor)) = move_plan {
                let mut new_nodes: Vec<NodeId> =
                    members.iter().copied().filter(|&p| p != donor).collect();
                new_nodes.push(JOINER);
                new_nodes.sort_unstable();
                for (i, node) in nodes.iter_mut().enumerate().take(N) {
                    if !crashed.contains(&((i + 1) as NodeId)) {
                        let _ = node.compact(shard);
                    }
                }
                if let Some(li) = (0..N)
                    .find(|&i| !crashed.contains(&((i + 1) as NodeId)) && nodes[i].is_leader(shard))
                {
                    let _ = nodes[li].reconfigure(shard, new_nodes);
                }
            }
        }
        // Transactions: random transfers, begun at a random live
        // gateway. A fifth are overdrawn on purpose so the abort path
        // (guard votes no) runs as often as commits under faults.
        if t % 8 == 0 {
            let gw = (rng.range_inclusive(1, N as u64) - 1) as usize;
            if !crashed.contains(&((gw + 1) as NodeId)) {
                let from = rng.below(ACCOUNTS as u64) as usize;
                let mut to = rng.below(ACCOUNTS as u64) as usize;
                if to == from {
                    to = (to + 1) % ACCOUNTS;
                }
                let amount = if rng.chance(0.2) {
                    ACCOUNTS as i64 * OPENING + 1 // can never be covered
                } else {
                    rng.range_inclusive(1, 100) as i64
                };
                let txn: TxnId = (TXN_CLIENT, next_txn);
                next_txn += 1;
                let spec = TxnSpec::transfer(&accounts[from], &accounts[to], amount);
                ledger.insert(txn, (from, to, amount));
                stats.submitted += 1;
                if acct_shard[from] != acct_shard[to] {
                    stats.cross_shard += 1;
                }
                if let Some(committed) = coords[gw].begin(&mut nodes[gw], txn, &spec) {
                    outcomes.insert(txn, committed);
                }
            }
        }
        // Noise: zero-delta adds on account keys — they collide with
        // prepare locks (rejected, applied=false) without moving money,
        // so plain traffic and transactions interleave on the same keys.
        if t % 16 == 0 {
            let i = rng.below(ACCOUNTS as u64) as usize;
            let s = acct_shard[i];
            if let Some(li) =
                (0..N).find(|&j| !crashed.contains(&((j + 1) as NodeId)) && nodes[j].is_leader(s))
            {
                let seq = noise_seq.entry(s).or_insert(0);
                *seq += 1;
                let _ = nodes[li].submit_batch(
                    s,
                    [KvCommand {
                        client: NOISE_CLIENT,
                        seq: *seq,
                        op: KvOp::Add {
                            key: accounts[i].clone(),
                            delta: 0,
                        },
                    }],
                );
            }
        }
        step(
            t,
            &mut nodes,
            &mut coords,
            &mut net,
            &crashed,
            &mut applied_seen,
            &mut outcomes,
        )?;
    }

    // Forced heal: links back, crashed nodes restart (with fresh
    // coordinators), and any shard halted on a disk fault recovers.
    for (x, y) in cut.drain(..) {
        if net.links_mut().set_link(x, y, true) {
            nodes[(x - 1) as usize].reconnected(y);
            nodes[(y - 1) as usize].reconnected(x);
        }
    }
    let down: Vec<NodeId> = crashed.drain().collect();
    for p in down {
        nodes[(p - 1) as usize].fail_recovery();
        incarnation[(p - 1) as usize] += 1;
        coords[(p - 1) as usize] = TxnCoordinator::with_nonce(p, incarnation[(p - 1) as usize]);
    }

    let mut converged_at = None;
    for t in 2_301..=12_000u64 {
        // An armed-but-unfired failpoint can still halt a shard long
        // after the heal; a supervisor restarting halted processes is
        // part of the recovery model.
        if t % 200 == 0 {
            for n in nodes.iter_mut() {
                if (0..SHARDS as u32).any(|s| n.shard(s).server_ref().is_halted()) {
                    n.fail_recovery();
                }
            }
        }
        step(
            t,
            &mut nodes,
            &mut coords,
            &mut net,
            &crashed,
            &mut applied_seen,
            &mut outcomes,
        )?;
        if t % 16 == 0
            && all_shards_converged(&nodes)
            && no_txn_residue(&nodes)
            && coords.iter().all(|c| c.in_flight() == 0)
        {
            converged_at = Some(t - 2_300);
            break;
        }
    }
    let Some(converge_ticks) = converged_at else {
        return Err(format!(
            "cluster did not converge after heal: {}; residue {}",
            diagnose(&nodes),
            residue(&nodes, &coords)
        ));
    };
    stats.converge_ticks = converge_ticks;

    if let Some((shard, _)) = move_plan {
        if membership_of(&nodes, shard).contains(&JOINER) {
            stats.migrated_shard = Some(shard);
        }
    }

    // Ground truth: the coordinator shard's replicated decision map.
    // No recorded decision means the transaction must have had no
    // effect (prepares never applied, or the scanner aborted them —
    // either way `no_txn_residue` already proved nothing is staged).
    let mut fate: HashMap<TxnId, bool> = HashMap::new();
    for (&txn, &(from, to, _)) in &ledger {
        let cs = acct_shard[from].min(acct_shard[to]);
        let members = membership_of(&nodes, cs);
        let owner = members.first().copied().unwrap_or(1);
        let committed = nodes[(owner - 1) as usize]
            .shard(cs)
            .state_machine()
            .decisions()
            .get(&txn)
            .copied()
            .unwrap_or(false);
        fate.insert(txn, committed);
        if committed {
            stats.committed += 1;
        } else {
            stats.aborted += 1;
        }
    }

    // A verdict a coordinator reported must match the recorded decision.
    for (txn, &reported) in &outcomes {
        if let Some(&decided) = fate.get(txn) {
            if reported != decided {
                return Err(format!(
                    "coordinator lied: txn {txn:?} reported committed={reported}, \
                     decision log says {decided}"
                ));
            }
        }
    }

    // Balances must equal opening + exactly the committed transfers, at
    // every replica of each account's shard — and money is conserved.
    let mut expected = [OPENING; ACCOUNTS];
    for (txn, &(from, to, amount)) in &ledger {
        if fate[txn] {
            expected[from] -= amount;
            expected[to] += amount;
        }
    }
    let mut total = 0i64;
    for i in 0..ACCOUNTS {
        let s = acct_shard[i];
        for &p in &membership_of(&nodes, s) {
            let got = nodes[(p - 1) as usize].read_local(&accounts[i]);
            if got != Some(expected[i]) {
                return Err(format!(
                    "balance drift: {} on node {p} is {got:?}, decision log \
                     implies {} ({} transactions committed)",
                    accounts[i], expected[i], stats.committed
                ));
            }
        }
        total += expected[i];
    }
    if total != ACCOUNTS as i64 * OPENING {
        return Err(format!(
            "money not conserved: accounts sum to {total}, opened with {}",
            ACCOUNTS as i64 * OPENING
        ));
    }

    // Session tables never run ahead of what the noise client issued.
    for s in 0..SHARDS as u32 {
        let issued = noise_seq.get(&s).copied().unwrap_or(0);
        for &p in &membership_of(&nodes, s) {
            if let Some(e) = nodes[(p - 1) as usize]
                .shard(s)
                .state_machine()
                .sessions()
                .get(&NOISE_CLIENT)
            {
                if e.seq > issued {
                    return Err(format!(
                        "shard {s} session table ahead of reality on node {p}: \
                         noise client at seq {}, only {issued} issued",
                        e.seq
                    ));
                }
            }
        }
    }

    Ok(stats)
}

/// The membership of shard `s` as the cluster itself reports it (via
/// the shard's current leader).
fn membership_of(nodes: &[Node], s: u32) -> Vec<NodeId> {
    nodes
        .iter()
        .find(|n| n.is_leader(s))
        .map(|n| n.shard(s).server_ref().nodes().to_vec())
        .unwrap_or_default()
}

/// Every shard has a leader, routing has converged, and all members of
/// its (possibly migrated) membership hold identical state machines.
fn all_shards_converged(nodes: &[Node]) -> bool {
    for s in 0..SHARDS as u32 {
        let members = membership_of(nodes, s);
        if members.is_empty() {
            return false;
        }
        let views: HashSet<NodeId> = members
            .iter()
            .map(|&p| nodes[(p - 1) as usize].leader_of(s))
            .collect();
        if views.len() != 1 || views.contains(&0) {
            return false;
        }
        let first = nodes[(members[0] - 1) as usize].shard(s).state_machine();
        if !members[1..]
            .iter()
            .all(|&p| nodes[(p - 1) as usize].shard(s).state_machine() == first)
        {
            return false;
        }
    }
    true
}

/// No staged prepare and no per-key lock on any *member* replica: every
/// transaction that ever locked a key was driven to commit or abort. A
/// donor migrated out of a shard keeps a frozen replica that may retain
/// stale locks forever — it is out of the shard's routing domain and
/// serves nothing, so it is not consulted.
fn no_txn_residue(nodes: &[Node]) -> bool {
    (0..SHARDS as u32).all(|s| {
        membership_of(nodes, s).iter().all(|&p| {
            let sm = nodes[(p - 1) as usize].shard(s).state_machine();
            sm.prepared().is_empty() && sm.locks().is_empty()
        })
    })
}

/// One line per shard for the did-not-converge error.
fn diagnose(nodes: &[Node]) -> String {
    (0..SHARDS as u32)
        .map(|s| {
            let members = membership_of(nodes, s);
            let views: Vec<NodeId> = members
                .iter()
                .map(|&p| nodes[(p - 1) as usize].leader_of(s))
                .collect();
            format!("shard {s}: members {members:?} leader views {views:?}")
        })
        .collect::<Vec<_>>()
        .join("; ")
}

/// Outstanding transaction state (members only) plus stuck coordinator
/// runs, for the did-not-converge error.
fn residue(nodes: &[Node], coords: &[TxnCoordinator]) -> String {
    let mut out = Vec::new();
    for s in 0..SHARDS as u32 {
        for &p in &membership_of(nodes, s) {
            let sm = nodes[(p - 1) as usize].shard(s).state_machine();
            if !sm.prepared().is_empty() || !sm.locks().is_empty() {
                out.push(format!(
                    "node {p} shard {s}: {} prepared, {} locks",
                    sm.prepared().len(),
                    sm.locks().len()
                ));
            }
        }
    }
    for (i, c) in coords.iter().enumerate() {
        if c.in_flight() > 0 {
            out.push(format!(
                "coordinator {} driving {} runs",
                i + 1,
                c.in_flight()
            ));
        }
    }
    if out.is_empty() {
        "none".into()
    } else {
        out.join("; ")
    }
}
