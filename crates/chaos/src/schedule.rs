//! Fault schedules: the event vocabulary and their seeded generation.

use crate::NodeId;
use omnipaxos::StorageFaultKind;
use simulator::Rng;

/// One injectable fault. Leader-relative patterns (`QuorumLoss`,
/// `ConstrainedStage*`, `CrashLeader`) are resolved against the live
/// leader when they fire, as the paper's testbed scripts did — the same
/// schedule therefore means the same *shape*, not the same pids, across
/// protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Cut both directions between two servers.
    CutLink(NodeId, NodeId),
    /// Heal both directions (runs the session-drop/reconnect protocol).
    HealLink(NodeId, NodeId),
    /// Heal every cut link.
    HealAll,
    /// Cut the link *and* lose the bytes already on the wire — a TCP
    /// session teardown rather than a silent blackhole.
    SessionDrop(NodeId, NodeId),
    /// §2a: everyone keeps only their link to a non-leader hub.
    QuorumLoss,
    /// §2b stage 1: disconnect a designated hub from the leader so the
    /// hub's log goes stale.
    ConstrainedStage1,
    /// §2b stage 2: fully partition the old leader; everyone else keeps
    /// only the (stale) hub.
    ConstrainedStage2,
    /// §2c: connect the servers in a pid-line; with ≥4 servers no
    /// quorum-connected server exists.
    ChainedLine,
    /// Crash a specific server (volatile state lost, storage kept).
    Crash(NodeId),
    /// Crash whoever currently leads.
    CrashLeader,
    /// Recover a crashed server from its persistent state.
    Recover(NodeId),
    /// Recover every crashed server.
    RecoverAll,
    /// Raise delivery jitter to `µs`, reordering across links (never
    /// within one — per-link FIFO is part of the link model, §3).
    DelaySpike(u64),
    /// Jitter back to zero.
    DelayCalm,
    /// Snapshot-compact one server's log at everything it has applied
    /// (Omni-Paxos only; a no-op for protocols without compaction).
    Compact(NodeId),
    /// Submit a same-membership reconfiguration to the current leader
    /// (Omni-Paxos stop-sign handover / Raft joint change; no-op for
    /// Multi-Paxos and VR).
    Reconfigure,
    /// Arm a disk fault at one server: its next matching storage
    /// operation fails, after which the server must fail-stop — ack
    /// nothing, emit nothing — until a `Recover` heals it. Protocol
    /// adapters without a fallible-storage model degrade this to a plain
    /// crash, which is the same externally visible behaviour.
    DiskFault(NodeId, StorageFaultKind),
    /// Arm a disk fault at whoever currently leads — the worst case: the
    /// one server everyone waits on silently stops persisting.
    DiskFaultLeader(StorageFaultKind),
}

/// A fault bound to the simulation tick at which it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    pub at_tick: u64,
    pub fault: Fault,
}

fn pair(rng: &mut Rng, n: u64) -> (NodeId, NodeId) {
    let a = rng.range_inclusive(1, n);
    let mut b = rng.range_inclusive(1, n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

fn disk_kind(rng: &mut Rng) -> StorageFaultKind {
    match rng.below(5) {
        0 => StorageFaultKind::SyncFailed,
        1 => StorageFaultKind::ShortWrite,
        2 => StorageFaultKind::NoSpace,
        3 => StorageFaultKind::Corruption,
        _ => StorageFaultKind::CheckpointCrash,
    }
}

/// Generate a schedule of `events` faults over `[warmup, horizon)` ticks
/// for an `n`-server cluster. Same `(seed, n, events, horizon)` ⇒ same
/// schedule.
pub fn generate(seed: u64, n: usize, events: usize, horizon_ticks: u64) -> Vec<ScheduledFault> {
    generate_profile(seed, n, events, horizon_ticks, false)
}

/// Like [`generate`], but a third of the events are disk faults
/// ([`Fault::DiskFault`]/[`Fault::DiskFaultLeader`]) on top of the full
/// network/crash vocabulary. A separate profile so every schedule the
/// regression seeds pin down stays byte-identical.
pub fn generate_disk(
    seed: u64,
    n: usize,
    events: usize,
    horizon_ticks: u64,
) -> Vec<ScheduledFault> {
    generate_profile(seed, n, events, horizon_ticks, true)
}

fn generate_profile(
    seed: u64,
    n: usize,
    events: usize,
    horizon_ticks: u64,
    disk: bool,
) -> Vec<ScheduledFault> {
    let xor = if disk { 0xD15C_FA17 } else { 0xC4A0_5EED };
    let mut rng = Rng::seed_from_u64(seed ^ xor);
    let n = n as u64;
    let warmup = (horizon_ticks / 10).max(1);
    let mut out: Vec<ScheduledFault> = (0..events)
        .map(|_| {
            let at_tick = rng.range_inclusive(warmup, horizon_ticks.saturating_sub(1));
            let roll = if disk { rng.below(27) } else { rng.below(18) };
            let fault = match roll {
                0..=2 => {
                    let (a, b) = pair(&mut rng, n);
                    Fault::CutLink(a, b)
                }
                3 | 4 => {
                    let (a, b) = pair(&mut rng, n);
                    Fault::HealLink(a, b)
                }
                5 => {
                    let (a, b) = pair(&mut rng, n);
                    Fault::SessionDrop(a, b)
                }
                6 => Fault::QuorumLoss,
                7 => Fault::ConstrainedStage1,
                8 => Fault::ConstrainedStage2,
                9 => Fault::ChainedLine,
                10 => Fault::HealAll,
                11 => Fault::Crash(rng.range_inclusive(1, n)),
                12 => Fault::CrashLeader,
                13 => Fault::Recover(rng.range_inclusive(1, n)),
                14 => Fault::RecoverAll,
                15 => Fault::DelaySpike(rng.range_inclusive(300, 2_500)),
                16 => Fault::DelayCalm,
                17 => {
                    if rng.chance(0.5) {
                        Fault::Compact(rng.range_inclusive(1, n))
                    } else {
                        Fault::Reconfigure
                    }
                }
                // Disk-profile extension: a third of the events attack
                // storage. Anyone may be hit; the leader is singled out
                // often enough that "the quorum's pivot stops persisting"
                // is a common shape, and extra Recover events keep halted
                // servers cycling back in mid-schedule.
                18..=21 => Fault::DiskFault(rng.range_inclusive(1, n), disk_kind(&mut rng)),
                22 | 23 => Fault::DiskFaultLeader(disk_kind(&mut rng)),
                24 | 25 => Fault::Recover(rng.range_inclusive(1, n)),
                26 => Fault::RecoverAll,
                _ => unreachable!(),
            };
            ScheduledFault { at_tick, fault }
        })
        .collect();
    out.sort_by_key(|f| f.at_tick);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(generate(7, 5, 20, 1000), generate(7, 5, 20, 1000));
        assert_ne!(generate(7, 5, 20, 1000), generate(8, 5, 20, 1000));
    }

    #[test]
    fn disk_profile_is_deterministic_and_contains_disk_faults() {
        assert_eq!(generate_disk(7, 5, 40, 1000), generate_disk(7, 5, 40, 1000));
        let hits = generate_disk(7, 5, 40, 1000)
            .iter()
            .filter(|f| matches!(f.fault, Fault::DiskFault(_, _) | Fault::DiskFaultLeader(_)))
            .count();
        assert!(hits > 0, "40 disk-profile events must include disk faults");
    }

    #[test]
    fn plain_profile_is_unchanged_by_the_disk_extension() {
        // Pinned: the regression seeds in the chaos tests replay these
        // schedules; the disk profile must not perturb them.
        for f in generate(7, 5, 200, 1000) {
            assert!(
                !matches!(f.fault, Fault::DiskFault(_, _) | Fault::DiskFaultLeader(_)),
                "plain generate() emitted a disk fault"
            );
        }
    }

    #[test]
    fn pairs_are_distinct_and_in_range() {
        for s in 0..32 {
            for f in generate(s, 3, 30, 500) {
                match f.fault {
                    Fault::CutLink(a, b) | Fault::HealLink(a, b) | Fault::SessionDrop(a, b) => {
                        assert_ne!(a, b);
                        assert!((1..=3).contains(&a) && (1..=3).contains(&b));
                    }
                    _ => {}
                }
                assert!(f.at_tick < 500);
            }
        }
    }
}
