//! An intentionally broken replica for harness regression tests.
//!
//! [`BuggyOmniReplica`] models the classic **ack-before-persist** bug: the
//! server acknowledges (and delivers) decided entries before they are
//! actually durable, so a crash loses the tail of its decided log. On
//! recovery it rebuilds from a decided log missing the last few entries —
//! exactly what a write-behind storage layer without fsync-before-ack
//! produces.
//!
//! The chaos harness must catch this through its durability invariants
//! (delivery cursor / decided-log length never move backwards across
//! recovery); a harness change that stops catching it is a regression.

use cluster::protocol::{OmniReplica, ProtoMsg, Replica};
use cluster::{Cmd, NodeId};
use omnipaxos::MigrationScheme;

/// How many tail entries the fake non-durable storage loses per crash.
const LOST_TAIL: usize = 2;

/// An [`OmniReplica`] whose recovery path drops the tail of its decided
/// log, simulating ack-before-persist.
pub struct BuggyOmniReplica {
    inner: OmniReplica,
    nodes: Vec<NodeId>,
    hb_timeout_ticks: u64,
}

impl BuggyOmniReplica {
    pub fn new(pid: NodeId, nodes: Vec<NodeId>, hb_timeout_ticks: u64) -> Self {
        BuggyOmniReplica {
            inner: OmniReplica::new(
                pid,
                nodes.clone(),
                MigrationScheme::Parallel,
                hb_timeout_ticks,
                Vec::new(),
            ),
            nodes,
            hb_timeout_ticks,
        }
    }
}

impl Replica for BuggyOmniReplica {
    fn pid(&self) -> NodeId {
        self.inner.pid()
    }

    fn tick(&mut self) {
        self.inner.tick();
    }

    fn handle(&mut self, from: NodeId, msg: ProtoMsg) {
        self.inner.handle(from, msg);
    }

    fn outgoing(&mut self) -> Vec<(NodeId, ProtoMsg)> {
        self.inner.outgoing()
    }

    fn propose(&mut self, cmd: Cmd) -> bool {
        self.inner.propose(cmd)
    }

    fn poll_decided(&mut self) -> Vec<u64> {
        self.inner.poll_decided()
    }

    fn is_leader(&self) -> bool {
        self.inner.is_leader()
    }

    fn leader_rank(&self) -> u64 {
        self.inner.leader_rank()
    }

    fn leader_changes(&self) -> u64 {
        self.inner.leader_changes()
    }

    fn reconnected(&mut self, pid: NodeId) {
        self.inner.reconnected(pid);
    }

    fn fail_recovery(&mut self) {
        let srv = self.inner.server_ref();
        if srv.log_start() == 0 {
            // The bug: rebuild from a decided log missing its tail. Only
            // reproducible while the full log is retained — after
            // compaction the lost prefix could not be re-seeded, so fall
            // back to the correct recovery there.
            let log: Vec<Cmd> = srv.log().to_vec();
            let keep = log.len().saturating_sub(LOST_TAIL);
            self.inner = OmniReplica::new(
                self.inner.pid(),
                self.nodes.clone(),
                MigrationScheme::Parallel,
                self.hb_timeout_ticks,
                log[..keep].to_vec(),
            );
        } else {
            self.inner.fail_recovery();
        }
    }

    fn reconfigure(&mut self, new_nodes: Vec<NodeId>) -> bool {
        self.inner.reconfigure(new_nodes)
    }

    fn reconfig_done(&self) -> bool {
        self.inner.reconfig_done()
    }

    fn reconfigured_to(&self, new_nodes: &[NodeId]) -> bool {
        self.inner.reconfigured_to(new_nodes)
    }

    fn decided_base(&self) -> u64 {
        self.inner.decided_base()
    }

    fn decided_log_ids(&self) -> (u64, Vec<u64>) {
        self.inner.decided_log_ids()
    }

    fn leader_epoch(&self) -> Option<(u64, NodeId)> {
        self.inner.leader_epoch()
    }

    fn audit_elections(&self) -> Vec<(u64, u64, u64)> {
        self.inner.audit_elections()
    }
}
