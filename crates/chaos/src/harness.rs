//! The chaos simulation loop: replicas over the simulated network under a
//! fault schedule, with continuous invariant checking and trace capture.

use crate::buggy::BuggyOmniReplica;
use crate::monitor::{Breach, Monitor};
use crate::schedule::{generate, generate_disk, Fault, ScheduledFault};
use crate::trace::{fingerprint, TraceEvent};
use crate::NodeId;
use cluster::protocol::{
    MpReplica, OmniReplica, ProtoMsg, ProtocolKind, RaftReplica, Replica, VrReplica,
};
use cluster::scenarios::{chained_line_cuts, constrained_stage2_cuts, quorum_loss_cuts};
use cluster::Cmd;
use omnipaxos::{MigrationScheme, SnapshotData, StorageFaultKind};
use simulator::{Network, NetworkConfig};
use std::collections::BTreeSet;

/// Simulated microseconds per tick (timer granularity).
const TICK_US: u64 = 1_000;
/// Default one-way link latency, µs.
const LATENCY_US: u64 = 100;
/// Election timeout in ticks (BLE round / Raft election base; the failure
/// detectors of Multi-Paxos and VR run at 4× this, as in the runner).
const ELECTION_TICKS: u64 = 5;
/// How often the retained decided logs are fully re-scanned, in ticks.
/// Delivered batches, cursors and leadership are checked every tick.
const SCAN_EVERY: u64 = 8;
/// Liveness probe commands proposed after the forced heal.
const PROBES: u64 = 4;

/// An intentionally injected bug, for harness regression tests: the
/// harness must *fail* runs under these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bug {
    /// Servers acknowledge decided entries before persisting them; a
    /// crash loses the decided tail (see [`BuggyOmniReplica`]).
    AckBeforePersist,
}

/// Configuration of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    pub protocol: ProtocolKind,
    /// Cluster size (pids `1..=n`).
    pub n: usize,
    /// Seed for both schedule generation and the network.
    pub seed: u64,
    /// Number of faults to generate.
    pub fault_events: usize,
    /// Ticks of the fault phase.
    pub horizon_ticks: u64,
    /// Bounded-recovery window after the forced heal, in ticks.
    pub liveness_ticks: u64,
    /// Maximum commands proposed during the fault phase.
    pub propose_cap: u64,
    /// Injected bug (Omni-Paxos only), for regression tests.
    pub bug: Option<Bug>,
    /// Use the disk-fault schedule profile: a third of the generated
    /// events arm storage failpoints ([`Fault::DiskFault`]) instead of
    /// attacking only the network.
    pub disk_faults: bool,
}

impl ChaosConfig {
    /// Default-sized run for `protocol` under `seed`.
    pub fn new(protocol: ProtocolKind, seed: u64) -> Self {
        ChaosConfig {
            protocol,
            n: 5,
            seed,
            fault_events: 14,
            horizon_ticks: 1_200,
            liveness_ticks: 6_000,
            propose_cap: 200,
            bug: None,
            disk_faults: false,
        }
    }
}

/// A detected violation: the failing invariant plus evidence, stamped with
/// the simulation tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub tick: u64,
    pub invariant: String,
    pub detail: String,
}

/// Everything one run produced: for passing runs a trace and statistics,
/// for failing runs additionally the violation. Same config ⇒ bit-identical
/// report (asserted by the determinism tests).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    pub protocol: ProtocolKind,
    pub seed: u64,
    pub n: usize,
    pub schedule: Vec<ScheduledFault>,
    pub trace: Vec<TraceEvent>,
    pub fingerprint: u64,
    pub violation: Option<Violation>,
    /// Distinct decided log positions observed cluster-wide.
    pub decided_positions: u64,
    /// Ticks from the forced heal until every server had every probe.
    pub converged_in: Option<u64>,
}

/// One replica with chaos-specific side doors (compaction, forced
/// same-membership reconfiguration) that the uniform trait keeps closed.
enum ChaosNode {
    Omni(OmniReplica),
    Buggy(BuggyOmniReplica),
    Raft(RaftReplica),
    Mp(MpReplica),
    Vr(VrReplica),
}

impl ChaosNode {
    fn replica(&self) -> &dyn Replica {
        match self {
            ChaosNode::Omni(r) => r,
            ChaosNode::Buggy(r) => r,
            ChaosNode::Raft(r) => r,
            ChaosNode::Mp(r) => r,
            ChaosNode::Vr(r) => r,
        }
    }

    fn replica_mut(&mut self) -> &mut dyn Replica {
        match self {
            ChaosNode::Omni(r) => r,
            ChaosNode::Buggy(r) => r,
            ChaosNode::Raft(r) => r,
            ChaosNode::Mp(r) => r,
            ChaosNode::Vr(r) => r,
        }
    }

    /// Snapshot-compact at everything applied (Omni-Paxos only). The
    /// snapshot payload is an opaque marker: the harness replicates plain
    /// commands, so there is no state machine to serialize — what matters
    /// is that the log prefix is gone and lagging peers must adopt the
    /// snapshot instead of fetching entries.
    fn compact(&mut self) -> Option<u64> {
        match self {
            ChaosNode::Omni(r) => {
                let upto = r.server_ref().applied_cursor();
                if upto <= r.server_ref().log_start() {
                    return None;
                }
                let data: SnapshotData = std::sync::Arc::from(&b"chaos-snapshot"[..]);
                r.server().provide_snapshot(upto, data).ok()?;
                Some(upto)
            }
            _ => None,
        }
    }

    /// Submit a same-membership reconfiguration (software-upgrade style,
    /// §6.1). Bypasses the adapter's duplicate-membership guard, which
    /// exists for the runner's retry loop, not for chaos injection.
    fn start_reconfigure(&mut self, members: Vec<NodeId>) -> bool {
        match self {
            ChaosNode::Omni(r) => r.server().reconfigure(members).is_ok(),
            ChaosNode::Raft(r) => r.reconfigure(members),
            _ => false,
        }
    }
}

fn build_nodes(cfg: &ChaosConfig) -> Vec<ChaosNode> {
    let members: Vec<NodeId> = (1..=cfg.n as NodeId).collect();
    if cfg.bug.is_some() {
        assert_eq!(
            cfg.protocol,
            ProtocolKind::OmniPaxos,
            "bug injection wraps the Omni-Paxos adapter"
        );
    }
    members
        .iter()
        .map(|&pid| match cfg.protocol {
            ProtocolKind::OmniPaxos | ProtocolKind::OmniPaxosLeaderMigration => {
                if cfg.bug == Some(Bug::AckBeforePersist) {
                    ChaosNode::Buggy(BuggyOmniReplica::new(pid, members.clone(), ELECTION_TICKS))
                } else {
                    let scheme = if cfg.protocol == ProtocolKind::OmniPaxos {
                        MigrationScheme::Parallel
                    } else {
                        MigrationScheme::LeaderOnly
                    };
                    ChaosNode::Omni(OmniReplica::new(
                        pid,
                        members.clone(),
                        scheme,
                        ELECTION_TICKS,
                        Vec::new(),
                    ))
                }
            }
            ProtocolKind::Raft | ProtocolKind::RaftPvCq => ChaosNode::Raft(RaftReplica::new(
                pid,
                members.clone(),
                cfg.protocol == ProtocolKind::RaftPvCq,
                ELECTION_TICKS,
                cfg.seed,
                Vec::new(),
            )),
            ProtocolKind::MultiPaxos => {
                ChaosNode::Mp(MpReplica::new(pid, members.clone(), ELECTION_TICKS * 4))
            }
            ProtocolKind::Vr => {
                ChaosNode::Vr(VrReplica::new(pid, members.clone(), ELECTION_TICKS * 4))
            }
        })
        .collect()
}

/// The live simulation state of one chaos run.
struct Sim {
    members: Vec<NodeId>,
    nodes: Vec<ChaosNode>,
    net: Network<ProtoMsg>,
    crashed: BTreeSet<NodeId>,
    /// Cut pairs, normalized `(min, max)`; ordered so `HealAll` heals in a
    /// deterministic order.
    cut: BTreeSet<(NodeId, NodeId)>,
    /// Remembered by `ConstrainedStage1` for stage 2: `(hub, old_leader)`.
    constrained: Option<(NodeId, NodeId)>,
    monitor: Monitor,
    trace: Vec<TraceEvent>,
    last_epoch: Vec<Option<(u64, NodeId)>>,
    next_id: u64,
    proposed_count: u64,
    violation: Option<Violation>,
}

impl Sim {
    fn new(cfg: &ChaosConfig) -> Self {
        let members: Vec<NodeId> = (1..=cfg.n as NodeId).collect();
        let net = Network::new(NetworkConfig {
            nodes: members.clone(),
            default_latency_us: LATENCY_US,
            jitter_us: 0,
            nic_bytes_per_sec: None,
            priority_bytes: 256,
            seed: cfg.seed,
        });
        Sim {
            nodes: build_nodes(cfg),
            net,
            crashed: BTreeSet::new(),
            cut: BTreeSet::new(),
            constrained: None,
            monitor: Monitor::new(cfg.n),
            trace: Vec::new(),
            last_epoch: vec![None; cfg.n],
            next_id: 0,
            proposed_count: 0,
            violation: None,
            members,
        }
    }

    fn live(&self, pid: NodeId) -> bool {
        !self.crashed.contains(&pid)
    }

    /// Index of the freshest live leadership claimant.
    fn leader_idx(&self) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| self.live(n.replica().pid()) && n.replica().is_leader())
            .max_by_key(|(_, n)| n.replica().leader_rank())
            .map(|(i, _)| i)
    }

    fn breach_at(&mut self, tick: u64, b: Breach) {
        let desc = format!("[{}] {}", b.invariant, b.detail);
        self.trace.push(TraceEvent::Violation { tick, desc });
        self.violation = Some(Violation {
            tick,
            invariant: b.invariant.to_string(),
            detail: b.detail,
        });
    }

    /// Deliver everything due in the tick ending at `t`.
    fn deliver(&mut self, t: u64) {
        let deadline = t * TICK_US;
        while let Some(d) = self.net.pop_next_before(deadline) {
            if self.live(d.dst) {
                self.nodes[(d.dst - 1) as usize]
                    .replica_mut()
                    .handle(d.src, d.msg);
            }
        }
        self.net.advance_to(deadline);
    }

    fn cut_link(&mut self, a: NodeId, b: NodeId) {
        self.net.links_mut().set_link(a, b, false);
        self.cut.insert((a.min(b), a.max(b)));
    }

    fn heal_link(&mut self, a: NodeId, b: NodeId) {
        if self.net.links_mut().set_link(a, b, true) {
            // Session-drop protocol: both ends resynchronize, provided
            // they are up to notice.
            if self.live(a) {
                self.nodes[(a - 1) as usize].replica_mut().reconnected(b);
            }
            if self.live(b) {
                self.nodes[(b - 1) as usize].replica_mut().reconnected(a);
            }
        }
        self.cut.remove(&(a.min(b), a.max(b)));
    }

    fn crash(&mut self, pid: NodeId) -> bool {
        if !self.crashed.insert(pid) {
            return false;
        }
        self.net.drop_in_flight_for(pid);
        true
    }

    /// Arm `kind` at `p`. Adapters without a fallible-storage model
    /// report so and get crashed instead — externally the same fail-stop,
    /// so every protocol sees an equivalent schedule shape.
    fn disk_fault_at(&mut self, p: NodeId, kind: StorageFaultKind) -> String {
        if !self.live(p) {
            return format!("disk-fault {p} {kind:?} (down)");
        }
        if self.nodes[(p - 1) as usize]
            .replica_mut()
            .inject_disk_fault(kind)
        {
            format!("disk-fault {p} {kind:?}")
        } else {
            self.crash(p);
            format!("disk-fault {p} {kind:?} (degraded to crash)")
        }
    }

    /// Fire one fault, resolving leader-relative patterns, and record the
    /// resolved form in the trace.
    fn fire(&mut self, t: u64, fault: &Fault) {
        let leader = self.leader_idx().map(|i| self.members[i]).unwrap_or(0);
        // Partition patterns need a concrete pivot node even while no
        // leader is elected; fall back to the lowest member then.
        let pivot = if leader != 0 { leader } else { self.members[0] };
        let first_non = |l: NodeId, members: &[NodeId]| {
            members.iter().copied().find(|&p| p != l).expect("n >= 2")
        };
        let desc = match fault {
            Fault::CutLink(a, b) => {
                self.cut_link(*a, *b);
                format!("cut {a}<->{b}")
            }
            Fault::HealLink(a, b) => {
                self.heal_link(*a, *b);
                format!("heal {a}<->{b}")
            }
            Fault::HealAll => {
                let pairs: Vec<(NodeId, NodeId)> = self.cut.iter().copied().collect();
                for (a, b) in &pairs {
                    self.heal_link(*a, *b);
                }
                format!("heal-all ({} links)", pairs.len())
            }
            Fault::SessionDrop(a, b) => {
                self.cut_link(*a, *b);
                self.net.drop_in_flight_between(*a, *b);
                format!("session-drop {a}<->{b}")
            }
            Fault::QuorumLoss => {
                let hub = first_non(pivot, &self.members);
                for (a, b) in quorum_loss_cuts(&self.members.clone(), hub) {
                    self.cut_link(a, b);
                }
                format!("quorum-loss hub={hub} leader={pivot}")
            }
            Fault::ConstrainedStage1 => {
                let hub = first_non(pivot, &self.members);
                self.constrained = Some((hub, pivot));
                self.cut_link(hub, pivot);
                format!("constrained-1 hub={hub} leader={pivot}")
            }
            Fault::ConstrainedStage2 => {
                let (hub, old) = self
                    .constrained
                    .unwrap_or_else(|| (first_non(pivot, &self.members), pivot));
                for (a, b) in constrained_stage2_cuts(&self.members.clone(), hub, old) {
                    self.cut_link(a, b);
                }
                format!("constrained-2 hub={hub} old-leader={old}")
            }
            Fault::ChainedLine => {
                for (a, b) in chained_line_cuts(&self.members.clone()) {
                    self.cut_link(a, b);
                }
                "chained-line".to_string()
            }
            Fault::Crash(p) => {
                let did = self.crash(*p);
                format!("crash {p}{}", if did { "" } else { " (already down)" })
            }
            Fault::CrashLeader => {
                if leader != 0 {
                    self.crash(leader);
                    format!("crash-leader {leader}")
                } else {
                    "crash-leader (no leader)".to_string()
                }
            }
            Fault::Recover(p) => {
                if self.crashed.remove(p) {
                    self.nodes[(*p - 1) as usize].replica_mut().fail_recovery();
                    format!("recover {p}")
                } else if self.nodes[(*p - 1) as usize].replica().is_halted() {
                    // A disk-halted server never left the process table,
                    // but recovers the same way: reopen storage (rolling
                    // back the unsynced tail), re-sync via PrepareReq.
                    self.nodes[(*p - 1) as usize].replica_mut().fail_recovery();
                    format!("recover {p} (disk-halted)")
                } else {
                    format!("recover {p} (not down)")
                }
            }
            Fault::RecoverAll => {
                let down: Vec<NodeId> = self.crashed.iter().copied().collect();
                for p in &down {
                    self.crashed.remove(p);
                    self.nodes[(*p - 1) as usize].replica_mut().fail_recovery();
                }
                let mut healed = down.len();
                for i in 0..self.nodes.len() {
                    if self.nodes[i].replica().is_halted() {
                        self.nodes[i].replica_mut().fail_recovery();
                        healed += 1;
                    }
                }
                format!("recover-all ({healed} servers)")
            }
            Fault::DelaySpike(j) => {
                self.net.set_jitter_us(*j);
                format!("delay-spike jitter={j}us")
            }
            Fault::DelayCalm => {
                self.net.set_jitter_us(0);
                "delay-calm".to_string()
            }
            Fault::Compact(p) => {
                if self.live(*p) {
                    match self.nodes[(*p - 1) as usize].compact() {
                        Some(upto) => format!("compact {p} upto={upto}"),
                        None => format!("compact {p} (nothing to trim)"),
                    }
                } else {
                    format!("compact {p} (down)")
                }
            }
            Fault::Reconfigure => {
                if leader != 0 {
                    let members = self.members.clone();
                    let ok = self.nodes[(leader - 1) as usize].start_reconfigure(members);
                    format!("reconfigure via {leader} accepted={ok}")
                } else {
                    "reconfigure (no leader)".to_string()
                }
            }
            Fault::DiskFault(p, kind) => self.disk_fault_at(*p, *kind),
            Fault::DiskFaultLeader(kind) => {
                if leader != 0 {
                    self.disk_fault_at(leader, *kind)
                } else {
                    format!("disk-fault-leader {kind:?} (no leader)")
                }
            }
        };
        self.trace.push(TraceEvent::Fault { tick: t, desc });
    }

    /// Propose one command at the current leader; id is re-used until some
    /// leader accepts it.
    fn propose_next(&mut self) -> bool {
        let Some(li) = self.leader_idx() else {
            return false;
        };
        let id = self.next_id;
        if self.nodes[li].replica_mut().propose(Cmd::noop(id)) {
            self.monitor.on_proposed(id);
            self.next_id += 1;
            self.proposed_count += 1;
            true
        } else {
            false
        }
    }

    /// Timers, outgoing traffic, decided drains and per-tick checks.
    fn step_rest(&mut self, t: u64) {
        for i in 0..self.nodes.len() {
            let pid = self.members[i];
            if self.live(pid) {
                self.nodes[i].replica_mut().tick();
            }
        }
        for i in 0..self.nodes.len() {
            let from = self.members[i];
            let out = self.nodes[i].replica_mut().outgoing();
            if !self.live(from) {
                continue; // a down server sends nothing; backlog discarded
            }
            if self.nodes[i].replica().is_halted() {
                // Fail-stop contract: a server that failed to persist must
                // look crashed — any message it emits could be an ack of
                // state its disk never took.
                if !out.is_empty() {
                    self.breach_at(
                        t,
                        Breach {
                            invariant: "fail-stop",
                            detail: format!(
                                "server {from} emitted {} message(s) while halted \
                                 on a storage error",
                                out.len()
                            ),
                        },
                    );
                    return;
                }
                continue;
            }
            for (to, msg) in out {
                if to >= 1 && to <= self.members.len() as NodeId {
                    let bytes = msg.size_bytes();
                    self.net.send(from, to, bytes, msg);
                }
            }
        }
        for i in 0..self.nodes.len() {
            let pid = self.members[i];
            if !self.live(pid) {
                continue;
            }
            let base = self.nodes[i].replica().decided_base();
            let ids = self.nodes[i].replica_mut().poll_decided();
            if !ids.is_empty() {
                self.trace.push(TraceEvent::Decide {
                    tick: t,
                    pid,
                    base,
                    ids: ids.clone(),
                });
            }
            if let Err(b) = self.monitor.on_decided(pid, base, &ids) {
                self.breach_at(t, b);
                return;
            }
            if let Err(b) = self.monitor.check_leadership(self.nodes[i].replica()) {
                self.breach_at(t, b);
                return;
            }
            let epoch = self.nodes[i].replica().leader_epoch();
            if epoch != self.last_epoch[i] {
                if let Some((e, o)) = epoch {
                    self.trace.push(TraceEvent::Leader {
                        tick: t,
                        pid,
                        epoch: e,
                        owner: o,
                    });
                }
                self.last_epoch[i] = epoch;
            }
        }
        if t.is_multiple_of(SCAN_EVERY) {
            self.scan_all(t);
        }
    }

    /// Full retained-log cross-check of every live server.
    fn scan_all(&mut self, t: u64) {
        if std::env::var_os("CHAOS_DEBUG").is_some() {
            for (i, node) in self.nodes.iter().enumerate() {
                if let ChaosNode::Omni(r) = node {
                    let s = r.server_ref();
                    eprintln!(
                        "DBG @{t} pid={} live={} role={:?} cfg={} decided={} log_start={} applied={} leader={:?} is_leader={}",
                        self.members[i],
                        self.live(self.members[i]),
                        s.role(),
                        s.config_id(),
                        s.decided_len(),
                        s.log_start(),
                        s.applied_cursor(),
                        s.leader(),
                        s.is_leader(),
                    );
                    if let Some((target, have, snap)) = s.migration_status() {
                        eprintln!(
                            "DBG @{t} pid={} migration target={target} have={have} snap_pending={snap}",
                            self.members[i],
                        );
                    }
                }
            }
        }
        for i in 0..self.nodes.len() {
            if !self.live(self.members[i]) {
                continue;
            }
            if let Err(b) = self.monitor.scan_retained(self.nodes[i].replica()) {
                self.breach_at(t, b);
                return;
            }
        }
    }
}

/// Generate the schedule for `cfg` and run it.
pub fn run(cfg: &ChaosConfig) -> ChaosReport {
    let schedule = if cfg.disk_faults {
        generate_disk(cfg.seed, cfg.n, cfg.fault_events, cfg.horizon_ticks)
    } else {
        generate(cfg.seed, cfg.n, cfg.fault_events, cfg.horizon_ticks)
    };
    run_schedule(cfg, &schedule)
}

/// Run one specific schedule (replay and minimization entry point).
pub fn run_schedule(cfg: &ChaosConfig, schedule: &[ScheduledFault]) -> ChaosReport {
    let mut sim = Sim::new(cfg);
    sim.trace.push(TraceEvent::Phase {
        tick: 0,
        desc: format!(
            "start protocol={} n={} seed={}",
            cfg.protocol.name(),
            cfg.n,
            cfg.seed
        ),
    });
    let mut si = 0;
    for t in 1..=cfg.horizon_ticks {
        sim.deliver(t);
        while si < schedule.len() && schedule[si].at_tick <= t {
            let fault = schedule[si].fault.clone();
            si += 1;
            sim.fire(t, &fault);
        }
        if sim.proposed_count < cfg.propose_cap && t % 3 == 0 {
            sim.propose_next();
        }
        sim.step_rest(t);
        if sim.violation.is_some() {
            break;
        }
    }

    // Bounded-recovery liveness: heal everything, recover everyone, then
    // freshly proposed probes must decide at *every* server in time.
    let mut converged_in = None;
    if sim.violation.is_none() {
        let t0 = cfg.horizon_ticks;
        sim.fire(t0, &Fault::DelayCalm);
        sim.fire(t0, &Fault::RecoverAll);
        sim.fire(t0, &Fault::HealAll);
        sim.trace.push(TraceEvent::Phase {
            tick: t0,
            desc: "forced heal; liveness probes".to_string(),
        });
        let probes: Vec<u64> = (0..PROBES).map(|k| sim.next_id + k).collect();
        sim.next_id += PROBES;
        let mut last_submit = 0u64;
        for t in t0 + 1..=t0 + cfg.liveness_ticks {
            sim.deliver(t);
            // (Re-)propose probes that not everyone has yet; duplicate
            // decides of the same id are legal (client-level retries).
            if last_submit == 0 || t - last_submit >= 200 {
                if let Some(li) = sim.leader_idx() {
                    let mut submitted = false;
                    for &id in &probes {
                        let everyone = sim
                            .members
                            .iter()
                            .all(|&p| sim.monitor.has_delivered(p, id));
                        if !everyone && sim.nodes[li].replica_mut().propose(Cmd::noop(id)) {
                            sim.monitor.on_proposed(id);
                            submitted = true;
                        }
                    }
                    if submitted {
                        last_submit = t;
                    }
                }
            }
            sim.step_rest(t);
            if sim.violation.is_some() {
                break;
            }
            // A failpoint armed late in the schedule may only fire now, on
            // the server's next storage operation. The bounded-recovery
            // contract says faults stop at the forced heal, so a server
            // that halts during the probe phase is restarted immediately
            // (its unsynced tail rolls back; it re-syncs via PrepareReq).
            for i in 0..sim.nodes.len() {
                if sim.nodes[i].replica().is_halted() {
                    sim.nodes[i].replica_mut().fail_recovery();
                    sim.trace.push(TraceEvent::Fault {
                        tick: t,
                        desc: format!(
                            "restart {} (disk fault fired after the heal)",
                            sim.members[i]
                        ),
                    });
                }
            }
            let done = probes.iter().all(|&id| {
                sim.members
                    .iter()
                    .all(|&p| sim.monitor.has_delivered(p, id))
            });
            if done {
                converged_in = Some(t - t0);
                sim.trace.push(TraceEvent::Phase {
                    tick: t,
                    desc: format!("liveness converged in {} ticks", t - t0),
                });
                break;
            }
        }
        if sim.violation.is_none() && converged_in.is_none() {
            let tick = t0 + cfg.liveness_ticks;
            sim.breach_at(
                tick,
                Breach {
                    invariant: "liveness",
                    detail: format!(
                        "probes {probes:?} were not decided at every server within \
                         {} ticks after the full heal",
                        cfg.liveness_ticks
                    ),
                },
            );
        }
    }

    if sim.violation.is_none() {
        sim.scan_all(cfg.horizon_ticks + cfg.liveness_ticks);
    }

    let fp = fingerprint(&sim.trace);
    ChaosReport {
        protocol: cfg.protocol,
        seed: cfg.seed,
        n: cfg.n,
        schedule: schedule.to_vec(),
        trace: sim.trace,
        fingerprint: fp,
        violation: sim.violation,
        decided_positions: sim.monitor.decided_positions(),
        converged_in,
    }
}
