//! # raft — the Raft comparator for the Omni-Paxos reproduction
//!
//! A from-scratch implementation of Raft (Ongaro & Ousterhout, USENIX ATC
//! 2014) in the style the Omni-Paxos paper compares against (TiKV's
//! `raft-rs`), including the **PreVote** and **CheckQuorum** mechanisms whose
//! combination is the "Raft PV+CQ" row of the paper's Table 1 (Jensen,
//! Howard, Mortier — HAOC 2021).
//!
//! The node is a sans-IO state machine with the same driving interface as
//! the `omnipaxos` crate: feed messages and ticks, drain outgoing messages.
//! Reconfiguration is **leader-driven** (the property the paper's §7.3
//! measures): new servers are added as learners and caught up by the leader
//! alone via `AppendEntries` streaming, after which a membership entry
//! switches the voter set.
//!
//! The deliberate differences from Omni-Paxos that the paper's analysis
//! (§2, Table 1) turns on are all present:
//!
//! * the elected leader must hold the **max log** (vote check on
//!   `last_log_term`/`last_log_idx`), so there is no synchronization phase;
//! * **term gossiping**: any message with a higher term deposes the current
//!   leader;
//! * **randomized election timers** instead of connectivity-aware election.

pub mod config;
pub mod messages;
pub mod node;

pub use config::{Command, RaftConfig};
pub use messages::{RaftEntry, RaftMsg, RaftPayload};
pub use node::{RaftNode, RaftRole};

/// Unique identifier of a server. `0` is reserved.
pub type NodeId = u64;

/// A Raft term.
pub type Term = u64;
