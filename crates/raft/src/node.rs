//! The Raft replica state machine.
//!
//! Follows the Raft paper (§5 of Ongaro & Ousterhout) with the extensions
//! the Omni-Paxos evaluation compares against:
//!
//! * **PreVote** — a candidate first probes with a non-disruptive round at
//!   `term + 1`; peers grant it only if they have not heard from a live
//!   leader within an election timeout (leader stickiness).
//! * **CheckQuorum** — a leader steps down if it has not heard from a
//!   majority of voters within an election timeout.
//! * **Leader-driven membership change** — new servers are caught up by the
//!   leader (learners), then a `Conf` entry switches the voter set. This is
//!   the coupling of reconfiguration and log replication whose cost §7.3 of
//!   the Omni-Paxos paper measures.
//!
//! Log indices are 1-based: index 0 means "before the first entry".

use crate::config::{Command, RaftConfig};
use crate::messages::{RaftEntry, RaftMsg, RaftPayload};
use crate::{NodeId, Term};
use simulator::rng::Rng;
use std::collections::{HashMap, HashSet};

/// The role of a Raft node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaftRole {
    Follower,
    /// Running a PreVote probe (PreVote only).
    PreCandidate,
    Candidate,
    Leader,
}

/// Majority of `n` voters.
fn majority(n: usize) -> usize {
    n / 2 + 1
}

/// A Raft replica. Drive it with [`RaftNode::tick`], [`RaftNode::handle`],
/// and [`RaftNode::outgoing_messages`].
pub struct RaftNode<C: Command> {
    config: RaftConfig,
    term: Term,
    voted_for: Option<NodeId>,
    log: Vec<RaftEntry<C>>,
    commit_idx: u64,
    /// Cursor for [`RaftNode::poll_decided`].
    applied_idx: u64,
    role: RaftRole,
    leader_id: Option<NodeId>,
    voters: Vec<NodeId>,
    learners: Vec<NodeId>,
    /// Index of the last membership entry in the log (0 = none).
    last_conf_idx: u64,
    // Candidate state.
    votes: HashSet<NodeId>,
    pre_votes: HashSet<NodeId>,
    // Leader state.
    next_idx: HashMap<NodeId, u64>,
    match_idx: HashMap<NodeId, u64>,
    /// Highest index optimistically streamed to each peer.
    sent_idx: HashMap<NodeId, u64>,
    /// Peers heard from since the last CheckQuorum sweep.
    recent_active: HashSet<NodeId>,
    check_elapsed: u64,
    /// Target membership awaiting learner catch-up.
    pending_conf: Option<Vec<NodeId>>,
    /// Index of an appended-but-uncommitted membership entry.
    conf_change_idx: Option<u64>,
    // Timers.
    election_elapsed: u64,
    randomized_timeout: u64,
    heartbeat_elapsed: u64,
    rng: Rng,
    outgoing: Vec<(NodeId, RaftMsg<C>)>,
    /// Number of leader changes observed (metrics).
    leader_changes: u64,
}

impl<C: Command> RaftNode<C> {
    /// Create a node. If `config.voters` does not contain `pid` the node is
    /// a learner: it accepts replication but never campaigns.
    pub fn new(config: RaftConfig) -> Self {
        let voters = config.voters.clone();
        let mut rng = Rng::seed_from_u64(config.seed);
        let randomized_timeout = config.election_ticks + rng.below(config.election_ticks.max(1));
        RaftNode {
            term: 0,
            voted_for: None,
            log: Vec::new(),
            commit_idx: 0,
            applied_idx: 0,
            role: RaftRole::Follower,
            leader_id: None,
            voters,
            learners: Vec::new(),
            last_conf_idx: 0,
            votes: HashSet::new(),
            pre_votes: HashSet::new(),
            next_idx: HashMap::new(),
            match_idx: HashMap::new(),
            sent_idx: HashMap::new(),
            recent_active: HashSet::new(),
            check_elapsed: 0,
            pending_conf: None,
            conf_change_idx: None,
            election_elapsed: 0,
            randomized_timeout,
            heartbeat_elapsed: 0,
            rng,
            outgoing: Vec::new(),
            leader_changes: 0,
            config,
        }
    }

    /// Create a node whose log is pre-loaded with `cmds`, all committed and
    /// already applied (used by experiments that start from a long history,
    /// §7.3 of the Omni-Paxos paper). The node starts at term 1 so the
    /// entries satisfy the commit rule.
    pub fn with_initial_log(config: RaftConfig, cmds: Vec<C>) -> Self {
        let mut node = Self::new(config);
        node.term = 1;
        node.log = cmds
            .into_iter()
            .map(|c| RaftEntry {
                term: 1,
                payload: RaftPayload::Cmd(c),
            })
            .collect();
        node.commit_idx = node.log.len() as u64;
        node.applied_idx = node.commit_idx;
        node
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub fn pid(&self) -> NodeId {
        self.config.pid
    }

    pub fn term(&self) -> Term {
        self.term
    }

    pub fn role(&self) -> RaftRole {
        self.role
    }

    pub fn is_leader(&self) -> bool {
        self.role == RaftRole::Leader
    }

    pub fn leader_id(&self) -> Option<NodeId> {
        self.leader_id
    }

    pub fn commit_idx(&self) -> u64 {
        self.commit_idx
    }

    pub fn log_len(&self) -> u64 {
        self.log.len() as u64
    }

    /// The current voter set.
    pub fn voters(&self) -> &[NodeId] {
        &self.voters
    }

    /// Number of leader changes this node has observed.
    pub fn leader_changes(&self) -> u64 {
        self.leader_changes
    }

    /// Is a membership change still in flight (learners catching up or the
    /// `Conf` entry uncommitted)?
    pub fn reconfiguring(&self) -> bool {
        self.pending_conf.is_some() || self.conf_change_idx.is_some()
    }

    /// The committed client commands, in log order (noops and membership
    /// entries carry no client command and are skipped). An external
    /// invariant checker compares this against the history it accumulated
    /// from [`RaftNode::poll_decided`]: any divergence means the committed
    /// log was silently rewritten — e.g. an ack-before-persist bug losing
    /// entries across a crash.
    pub fn committed_log(&self) -> impl Iterator<Item = &C> {
        self.log[..self.commit_idx as usize]
            .iter()
            .filter_map(|e| match &e.payload {
                RaftPayload::Cmd(c) => Some(c),
                _ => None,
            })
    }

    /// Newly committed client commands since the last call.
    pub fn poll_decided(&mut self) -> Vec<C> {
        let mut out = Vec::new();
        while self.applied_idx < self.commit_idx {
            self.applied_idx += 1;
            if let RaftPayload::Cmd(c) = &self.log[(self.applied_idx - 1) as usize].payload {
                out.push(c.clone());
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Client API
    // ------------------------------------------------------------------

    /// Propose a command; fails unless this node is the leader.
    pub fn propose(&mut self, cmd: C) -> bool {
        if self.role != RaftRole::Leader {
            return false;
        }
        self.append_to_log(RaftPayload::Cmd(cmd));
        true
    }

    /// Start a leader-driven membership change to `new_voters`: added
    /// servers are caught up by this leader alone, after which a `Conf`
    /// entry switches the voter set. Fails if not leader or a change is
    /// already pending.
    pub fn propose_membership(&mut self, new_voters: Vec<NodeId>) -> bool {
        if self.role != RaftRole::Leader || self.reconfiguring() {
            return false;
        }
        let mut want = new_voters.clone();
        want.sort_unstable();
        let mut have = self.voters.clone();
        have.sort_unstable();
        if want == have {
            return false; // already in this configuration
        }
        // Replicate the *intent* so a successor leader can finish the
        // change if this one is deposed mid-catch-up.
        self.append_to_log(RaftPayload::ConfPrep(new_voters));
        self.maybe_commit_conf_progress();
        true
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Advance logical time by one tick.
    pub fn tick(&mut self) {
        if self.role == RaftRole::Leader {
            self.heartbeat_elapsed += 1;
            if self.heartbeat_elapsed >= self.config.heartbeat_ticks {
                self.heartbeat_elapsed = 0;
                self.broadcast_heartbeat();
            }
            if self.config.check_quorum {
                self.check_elapsed += 1;
                if self.check_elapsed >= self.config.election_ticks {
                    self.check_elapsed = 0;
                    let active = self.recent_active.len() + 1; // + self
                    self.recent_active.clear();
                    if active < majority(self.voters.len()) && self.voters.len() > 1 {
                        // CheckQuorum: cannot reach a majority; step down.
                        self.become_follower(self.term, None);
                        return;
                    }
                }
            }
            self.maybe_commit_conf_progress();
        } else {
            self.election_elapsed += 1;
            if self.election_elapsed >= self.randomized_timeout
                && self.voters.contains(&self.config.pid)
            {
                if self.config.pre_vote {
                    self.pre_campaign();
                } else {
                    self.campaign();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Elections
    // ------------------------------------------------------------------

    fn reset_election_timer(&mut self) {
        self.election_elapsed = 0;
        self.randomized_timeout =
            self.config.election_ticks + self.rng.below(self.config.election_ticks.max(1));
    }

    fn last_log(&self) -> (u64, Term) {
        let idx = self.log.len() as u64;
        let term = self.log.last().map(|e| e.term).unwrap_or(0);
        (idx, term)
    }

    fn log_up_to_date(&self, last_idx: u64, last_term: Term) -> bool {
        let (my_idx, my_term) = self.last_log();
        last_term > my_term || (last_term == my_term && last_idx >= my_idx)
    }

    fn pre_campaign(&mut self) {
        self.role = RaftRole::PreCandidate;
        self.pre_votes.clear();
        self.pre_votes.insert(self.config.pid);
        self.reset_election_timer();
        if self.pre_votes.len() >= majority(self.voters.len()) {
            self.campaign();
            return;
        }
        let (last_log_idx, last_log_term) = self.last_log();
        let term = self.term + 1;
        for &peer in &self.voters.clone() {
            if peer != self.config.pid {
                self.outgoing.push((
                    peer,
                    RaftMsg::RequestVote {
                        term,
                        last_log_idx,
                        last_log_term,
                        pre_vote: true,
                    },
                ));
            }
        }
    }

    fn campaign(&mut self) {
        self.term += 1;
        self.role = RaftRole::Candidate;
        self.voted_for = Some(self.config.pid);
        self.leader_id = None;
        self.votes.clear();
        self.votes.insert(self.config.pid);
        self.reset_election_timer();
        if self.votes.len() >= majority(self.voters.len()) {
            self.become_leader();
            return;
        }
        let (last_log_idx, last_log_term) = self.last_log();
        let term = self.term;
        for &peer in &self.voters.clone() {
            if peer != self.config.pid {
                self.outgoing.push((
                    peer,
                    RaftMsg::RequestVote {
                        term,
                        last_log_idx,
                        last_log_term,
                        pre_vote: false,
                    },
                ));
            }
        }
    }

    fn become_leader(&mut self) {
        self.role = RaftRole::Leader;
        self.leader_id = Some(self.config.pid);
        self.leader_changes += 1;
        self.heartbeat_elapsed = 0;
        self.check_elapsed = 0;
        self.recent_active.clear();
        let len = self.log.len() as u64;
        for &p in self.peers().iter() {
            self.next_idx.insert(p, len + 1);
            self.match_idx.insert(p, 0);
            // Optimistically assume peers are near the tip; heartbeat
            // probes walk lagging peers (e.g. mid-catch-up learners) back
            // via the conflict hint, *resuming* rather than restarting a
            // predecessor's transfer.
            self.sent_idx.insert(p, len);
        }
        // Commit-index discovery no-op (Raft §5.4.2 / §8).
        self.append_to_log(RaftPayload::Noop);
    }

    fn become_follower(&mut self, term: Term, leader: Option<NodeId>) {
        if term > self.term {
            self.term = term;
            self.voted_for = None;
        }
        if leader != self.leader_id && leader.is_some() {
            self.leader_changes += 1;
        }
        self.role = RaftRole::Follower;
        self.leader_id = leader;
        self.reset_election_timer();
    }

    /// All replication targets: voters and learners, except self.
    fn peers(&self) -> Vec<NodeId> {
        let mut p: Vec<NodeId> = self
            .voters
            .iter()
            .chain(self.learners.iter())
            .copied()
            .filter(|&x| x != self.config.pid)
            .collect();
        p.sort_unstable();
        p.dedup();
        p
    }

    // ------------------------------------------------------------------
    // Log replication
    // ------------------------------------------------------------------

    fn append_to_log(&mut self, payload: RaftPayload<C>) {
        self.apply_conf_payload(&payload);
        self.log.push(RaftEntry {
            term: self.term,
            payload,
        });
        if self.role == RaftRole::Leader {
            self.maybe_commit();
        }
    }

    /// Apply the configuration effect of an entry as it enters the log
    /// (Raft applies membership entries on *append*, not commit).
    fn apply_conf_payload(&mut self, payload: &RaftPayload<C>) {
        match payload {
            RaftPayload::Conf(v) => {
                self.voters = v.clone();
                self.last_conf_idx = self.log.len() as u64 + 1;
                self.pending_conf = None;
                self.learners.retain(|p| self.voters.contains(p));
            }
            RaftPayload::ConfPrep(target) => {
                for &p in target {
                    if !self.voters.contains(&p) && !self.learners.contains(&p) {
                        self.learners.push(p);
                        if self.role == RaftRole::Leader {
                            self.next_idx.insert(p, 1);
                            self.match_idx.insert(p, 0);
                            self.sent_idx.insert(p, 0);
                        }
                    }
                }
                self.pending_conf = Some(target.clone());
            }
            RaftPayload::Noop | RaftPayload::Cmd(_) => {}
        }
    }

    /// Empty (or probing) `AppendEntries` to everyone: the heartbeat.
    fn broadcast_heartbeat(&mut self) {
        for peer in self.peers() {
            // Probe from the optimistically sent position; a reject walks
            // `next_idx` back, re-triggering retransmission after loss.
            let probe_idx = self.sent_idx.get(&peer).copied().unwrap_or(0);
            let prev_term = self.term_at(probe_idx);
            self.outgoing.push((
                peer,
                RaftMsg::AppendEntries {
                    term: self.term,
                    prev_idx: probe_idx,
                    prev_term,
                    entries: Vec::new(),
                    commit: self.commit_idx,
                },
            ));
        }
    }

    fn term_at(&self, idx: u64) -> Term {
        if idx == 0 {
            0
        } else {
            self.log
                .get((idx - 1) as usize)
                .map(|e| e.term)
                .unwrap_or(0)
        }
    }

    /// Stream unsent entries to every peer; called on message drain so
    /// appends batch naturally (same policy as the Omni-Paxos node).
    fn flush_entries(&mut self) {
        if self.role != RaftRole::Leader {
            return;
        }
        let len = self.log.len() as u64;
        for peer in self.peers() {
            let sent = self.sent_idx.get(&peer).copied().unwrap_or(0);
            if sent >= len {
                continue;
            }
            // Flow control: cap unacknowledged entries per follower so a
            // bulk catch-up is paced by acks instead of flooding the NIC
            // (the window a TCP stream would impose).
            let acked = self.match_idx.get(&peer).copied().unwrap_or(0);
            let window = (self.config.max_batch as u64) * 4;
            if sent.saturating_sub(acked) >= window {
                continue;
            }
            let from = sent + 1;
            let to = len.min(sent + self.config.max_batch as u64);
            let entries = self.log[(from - 1) as usize..to as usize].to_vec();
            let prev_idx = from - 1;
            let prev_term = self.term_at(prev_idx);
            self.sent_idx.insert(peer, to);
            self.outgoing.push((
                peer,
                RaftMsg::AppendEntries {
                    term: self.term,
                    prev_idx,
                    prev_term,
                    entries,
                    commit: self.commit_idx,
                },
            ));
        }
    }

    fn maybe_commit(&mut self) {
        let mut matches: Vec<u64> = self
            .voters
            .iter()
            .map(|&p| {
                if p == self.config.pid {
                    self.log.len() as u64
                } else {
                    self.match_idx.get(&p).copied().unwrap_or(0)
                }
            })
            .collect();
        matches.sort_unstable_by(|a, b| b.cmp(a));
        let maj = majority(self.voters.len());
        if matches.len() < maj {
            return;
        }
        let candidate = matches[maj - 1];
        // Raft §5.4.2: only entries of the current term commit by counting.
        if candidate > self.commit_idx && self.term_at(candidate) == self.term {
            self.commit_idx = candidate;
            self.after_commit();
        }
    }

    fn after_commit(&mut self) {
        if let Some(conf_idx) = self.conf_change_idx {
            if self.commit_idx >= conf_idx {
                self.conf_change_idx = None;
                self.pending_conf = None;
                self.learners.retain(|p| self.voters.contains(p));
                if self.role == RaftRole::Leader && !self.voters.contains(&self.config.pid) {
                    // Removed by the change: step down once it is durable.
                    self.become_follower(self.term, None);
                }
            }
        }
    }

    /// If all incoming voters have caught up, append the `Conf` entry.
    fn maybe_commit_conf_progress(&mut self) {
        let Some(target) = self.pending_conf.clone() else {
            return;
        };
        if self.conf_change_idx.is_some() {
            return;
        }
        let len = self.log.len() as u64;
        let caught_up = target.iter().all(|&p| {
            p == self.config.pid
                || self.voters.contains(&p)
                || self.match_idx.get(&p).copied().unwrap_or(0) + 4 * self.config.max_batch as u64
                    >= len
        });
        if caught_up {
            self.append_to_log(RaftPayload::Conf(target));
            self.conf_change_idx = Some(self.log.len() as u64);
        }
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Drain outgoing messages, flushing any unsent log entries first.
    pub fn outgoing_messages(&mut self) -> Vec<(NodeId, RaftMsg<C>)> {
        self.flush_entries();
        std::mem::take(&mut self.outgoing)
    }

    /// Feed one incoming message.
    pub fn handle(&mut self, from: NodeId, msg: RaftMsg<C>) {
        // Term gossip: any non-PreVote message with a higher term deposes us
        // (this is precisely the mechanism the Omni-Paxos paper blames for
        // chained-scenario livelock, §2c).
        let msg_term = msg.term();
        let is_pre_probe = matches!(msg, RaftMsg::RequestVote { pre_vote: true, .. })
            || matches!(msg, RaftMsg::VoteResp { pre_vote: true, .. });
        if msg_term > self.term && !is_pre_probe {
            let leader = match msg {
                RaftMsg::AppendEntries { .. } => Some(from),
                _ => None,
            };
            self.become_follower(msg_term, leader);
        }
        match msg {
            RaftMsg::RequestVote {
                term,
                last_log_idx,
                last_log_term,
                pre_vote,
            } => self.handle_request_vote(from, term, last_log_idx, last_log_term, pre_vote),
            RaftMsg::VoteResp {
                term,
                granted,
                pre_vote,
            } => self.handle_vote_resp(from, term, granted, pre_vote),
            RaftMsg::AppendEntries {
                term,
                prev_idx,
                prev_term,
                entries,
                commit,
            } => self.handle_append(from, term, prev_idx, prev_term, entries, commit),
            RaftMsg::AppendResp {
                term,
                success,
                match_idx,
                conflict_idx,
            } => self.handle_append_resp(from, term, success, match_idx, conflict_idx),
        }
    }

    fn handle_request_vote(
        &mut self,
        from: NodeId,
        term: Term,
        last_log_idx: u64,
        last_log_term: Term,
        pre_vote: bool,
    ) {
        let granted = if pre_vote {
            // PreVote leader stickiness: deny while our leader is live.
            let leader_live =
                self.leader_id.is_some() && self.election_elapsed < self.config.election_ticks;
            term > self.term && !leader_live && self.log_up_to_date(last_log_idx, last_log_term)
        } else {
            term == self.term
                && self.voted_for.is_none_or(|v| v == from)
                && self.log_up_to_date(last_log_idx, last_log_term)
        };
        if granted && !pre_vote {
            self.voted_for = Some(from);
            self.reset_election_timer();
        }
        self.outgoing.push((
            from,
            RaftMsg::VoteResp {
                term: if pre_vote { term } else { self.term },
                granted,
                pre_vote,
            },
        ));
    }

    fn handle_vote_resp(&mut self, from: NodeId, term: Term, granted: bool, pre_vote: bool) {
        if pre_vote {
            if self.role == RaftRole::PreCandidate && term == self.term + 1 && granted {
                self.pre_votes.insert(from);
                if self.pre_votes.len() >= majority(self.voters.len()) {
                    self.campaign();
                }
            }
        } else if self.role == RaftRole::Candidate && term == self.term && granted {
            self.votes.insert(from);
            if self.votes.len() >= majority(self.voters.len()) {
                self.become_leader();
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_append(
        &mut self,
        from: NodeId,
        term: Term,
        prev_idx: u64,
        prev_term: Term,
        entries: Vec<RaftEntry<C>>,
        commit: u64,
    ) {
        if term < self.term {
            // Stale leader: tell it the news (this reply is the gossip that
            // deposes it).
            self.outgoing.push((
                from,
                RaftMsg::AppendResp {
                    term: self.term,
                    success: false,
                    match_idx: 0,
                    conflict_idx: 0,
                },
            ));
            return;
        }
        // Valid leader contact.
        if self.role != RaftRole::Follower || self.leader_id != Some(from) {
            self.become_follower(term, Some(from));
        } else {
            self.reset_election_timer();
        }
        let len = self.log.len() as u64;
        let prev_ok = prev_idx == 0 || (prev_idx <= len && self.term_at(prev_idx) == prev_term);
        if !prev_ok {
            // Accelerated backtracking hint.
            let conflict_idx = if prev_idx > len {
                len + 1
            } else {
                let bad_term = self.term_at(prev_idx);
                let mut i = prev_idx;
                while i > 1 && self.term_at(i - 1) == bad_term {
                    i -= 1;
                }
                i
            };
            self.outgoing.push((
                from,
                RaftMsg::AppendResp {
                    term: self.term,
                    success: false,
                    match_idx: 0,
                    conflict_idx,
                },
            ));
            return;
        }
        // Append, truncating conflicts.
        let mut idx = prev_idx;
        let mut truncated = false;
        for e in entries {
            idx += 1;
            if idx <= self.log.len() as u64 {
                if self.term_at(idx) != e.term {
                    self.log.truncate((idx - 1) as usize);
                    truncated = true;
                    self.push_entry(e);
                }
                // else: already have it (duplicate delivery) — keep ours.
            } else {
                self.push_entry(e);
            }
        }
        if truncated {
            self.refresh_conf_from_log();
        }
        let match_idx = idx.max(prev_idx);
        let new_commit = commit.min(match_idx).min(self.log.len() as u64);
        if new_commit > self.commit_idx {
            self.commit_idx = new_commit;
        }
        self.outgoing.push((
            from,
            RaftMsg::AppendResp {
                term: self.term,
                success: true,
                match_idx,
                conflict_idx: 0,
            },
        ));
    }

    fn push_entry(&mut self, e: RaftEntry<C>) {
        self.apply_conf_payload(&e.payload);
        self.log.push(e);
    }

    /// After truncation, the active membership state is recomputed from the
    /// surviving `Conf`/`ConfPrep` entries (or the initial voters).
    fn refresh_conf_from_log(&mut self) {
        if self.last_conf_idx <= self.log.len() as u64 && self.pending_conf.is_none() {
            return; // surviving conf entry still in place, nothing pending
        }
        self.last_conf_idx = 0;
        self.voters = self.config.voters.clone();
        self.pending_conf = None;
        self.learners.clear();
        let entries: Vec<RaftPayload<C>> = self.log.iter().map(|e| e.payload.clone()).collect();
        for (i, payload) in entries.iter().enumerate() {
            match payload {
                RaftPayload::Conf(v) => {
                    self.voters = v.clone();
                    self.last_conf_idx = i as u64 + 1;
                    self.pending_conf = None;
                    self.learners.retain(|p| self.voters.contains(p));
                }
                RaftPayload::ConfPrep(target) => {
                    for &p in target {
                        if !self.voters.contains(&p) && !self.learners.contains(&p) {
                            self.learners.push(p);
                        }
                    }
                    self.pending_conf = Some(target.clone());
                }
                _ => {}
            }
        }
    }

    fn handle_append_resp(
        &mut self,
        from: NodeId,
        term: Term,
        success: bool,
        match_idx: u64,
        conflict_idx: u64,
    ) {
        if self.role != RaftRole::Leader || term != self.term {
            return;
        }
        self.recent_active.insert(from);
        if success {
            let m = self.match_idx.entry(from).or_insert(0);
            *m = (*m).max(match_idx);
            let m = *m;
            self.next_idx.insert(from, m + 1);
            let s = self.sent_idx.entry(from).or_insert(0);
            *s = (*s).max(m);
            self.maybe_commit();
            self.maybe_commit_conf_progress();
        } else {
            // Back up and retransmit from the conflict hint.
            let nxt = conflict_idx.max(1);
            self.next_idx.insert(from, nxt);
            self.sent_idx.insert(from, nxt - 1);
        }
    }
}

impl<C: Command> std::fmt::Debug for RaftNode<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaftNode")
            .field("pid", &self.config.pid)
            .field("term", &self.term)
            .field("role", &self.role)
            .field("log_len", &self.log.len())
            .field("commit_idx", &self.commit_idx)
            .field("voters", &self.voters)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deliver all queued messages between nodes until quiescent, ticking
    /// `ticks` times first.
    fn run(nodes: &mut [RaftNode<u64>], steps: usize) {
        for _ in 0..steps {
            for n in nodes.iter_mut() {
                n.tick();
            }
            let mut inbox: Vec<(NodeId, NodeId, RaftMsg<u64>)> = Vec::new();
            for n in nodes.iter_mut() {
                let from = n.pid();
                for (to, m) in n.outgoing_messages() {
                    inbox.push((from, to, m));
                }
            }
            for (from, to, m) in inbox {
                if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                    n.handle(from, m);
                }
            }
        }
    }

    fn cluster(n: usize) -> Vec<RaftNode<u64>> {
        let voters: Vec<NodeId> = (1..=n as NodeId).collect();
        voters
            .iter()
            .map(|&p| RaftNode::new(RaftConfig::with(p, voters.clone())))
            .collect()
    }

    #[test]
    fn elects_a_single_leader() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let leaders: Vec<NodeId> = nodes
            .iter()
            .filter(|n| n.is_leader())
            .map(|n| n.pid())
            .collect();
        assert_eq!(leaders.len(), 1, "exactly one leader: {nodes:?}");
    }

    #[test]
    fn replicates_and_commits() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        for v in 1..=10 {
            assert!(nodes[li].propose(v));
        }
        run(&mut nodes, 50);
        for n in &mut nodes {
            assert_eq!(n.commit_idx(), 11, "10 cmds + leader noop");
        }
        let mut follower_decided: Vec<u64> = nodes[(li + 1) % 3].poll_decided();
        follower_decided.sort_unstable();
        assert_eq!(follower_decided, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn vote_denied_to_outdated_log() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        nodes[li].propose(1);
        run(&mut nodes, 50);
        let term = nodes[li].term();
        // A candidate with an empty log must not win votes.
        let (follower_idx, _) = nodes
            .iter()
            .enumerate()
            .find(|(i, n)| *i != li && !n.is_leader())
            .unwrap();
        let follower_pid = nodes[follower_idx].pid();
        nodes[follower_idx].handle(
            98,
            RaftMsg::RequestVote {
                term: term + 10,
                last_log_idx: 0,
                last_log_term: 0,
                pre_vote: false,
            },
        );
        let out = nodes[follower_idx].outgoing_messages();
        let vote = out
            .iter()
            .find_map(|(to, m)| match m {
                RaftMsg::VoteResp { granted, .. } if *to == 98 => Some(*granted),
                _ => None,
            })
            .expect("vote response sent");
        assert!(!vote, "follower {follower_pid} must deny vote to empty log");
    }

    #[test]
    fn pre_vote_denied_while_leader_is_live() {
        let voters: Vec<NodeId> = vec![1, 2, 3];
        let mut nodes: Vec<RaftNode<u64>> = voters
            .iter()
            .map(|&p| RaftNode::new(RaftConfig::with_pv_cq(p, voters.clone())))
            .collect();
        run(&mut nodes, 100);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        let fi = (li + 1) % 3;
        let term = nodes[fi].term();
        nodes[fi].handle(
            99,
            RaftMsg::RequestVote {
                term: term + 1,
                last_log_idx: 100,
                last_log_term: term + 1,
                pre_vote: true,
            },
        );
        let out = nodes[fi].outgoing_messages();
        let granted = out
            .iter()
            .find_map(|(to, m)| match m {
                RaftMsg::VoteResp {
                    granted,
                    pre_vote: true,
                    ..
                } if *to == 99 => Some(*granted),
                _ => None,
            })
            .expect("pre-vote response");
        assert!(!granted, "sticky follower must deny pre-vote");
    }

    #[test]
    fn check_quorum_leader_steps_down_when_isolated() {
        let voters: Vec<NodeId> = vec![1, 2, 3];
        let mut nodes: Vec<RaftNode<u64>> = voters
            .iter()
            .map(|&p| RaftNode::new(RaftConfig::with_pv_cq(p, voters.clone())))
            .collect();
        run(&mut nodes, 100);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        // Starve the leader of responses: tick it alone.
        for _ in 0..3 * nodes[li].config.election_ticks {
            nodes[li].tick();
            let _ = nodes[li].outgoing_messages();
        }
        assert!(
            !nodes[li].is_leader(),
            "CheckQuorum must demote an isolated leader"
        );
    }

    #[test]
    fn leader_overwrites_conflicting_follower_entries() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        // Manually give a follower an uncommitted tail from a *lower* term,
        // as a deposed leader would have left behind (a same-term conflict
        // is impossible in Raft: one leader writes one entry per index).
        let fi = (li + 1) % 3;
        let bogus_term = nodes[fi].term().saturating_sub(1);
        nodes[fi].log.push(RaftEntry {
            term: bogus_term,
            payload: RaftPayload::Cmd(666),
        });
        // New proposals replicate and the bogus tail must be resolved into a
        // consistent committed prefix everywhere.
        nodes[li].propose(1);
        run(&mut nodes, 80);
        let commit = nodes[li].commit_idx();
        for n in &nodes {
            assert!(n.commit_idx() >= commit - 1);
        }
        // Committed prefixes agree.
        let reference: Vec<_> = nodes[li].log[..commit as usize]
            .iter()
            .map(|e| format!("{:?}", e.payload))
            .collect();
        for n in &nodes {
            let c = n.commit_idx().min(commit) as usize;
            let got: Vec<_> = n.log[..c]
                .iter()
                .map(|e| format!("{:?}", e.payload))
                .collect();
            assert_eq!(got[..], reference[..c]);
        }
    }

    #[test]
    fn membership_change_adds_and_removes_servers() {
        let mut nodes = cluster(3);
        run(&mut nodes, 100);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        for v in 1..=20 {
            nodes[li].propose(v);
        }
        run(&mut nodes, 50);
        // Add server 4 (starts as empty learner), drop one follower.
        let leader_pid = nodes[li].pid();
        let dropped = (1..=3).find(|&p| p != leader_pid).unwrap();
        let new_voters: Vec<NodeId> = (1..=4).filter(|&p| p != dropped).collect();
        nodes.push(RaftNode::new(RaftConfig::with(4, vec![1, 2, 3])));
        assert!(nodes[li].propose_membership(new_voters.clone()));
        run(&mut nodes, 200);
        let four = nodes.iter_mut().find(|n| n.pid() == 4).unwrap();
        assert_eq!(four.voters(), &new_voters[..], "4 learned the new config");
        assert!(four.commit_idx() >= 21, "4 caught up the full log");
        let leader = nodes.iter().find(|n| n.pid() == leader_pid).unwrap();
        assert!(!leader.reconfiguring(), "change completed");
        assert_eq!(leader.voters(), &new_voters[..]);
    }

    #[test]
    fn commit_requires_current_term_entry() {
        // A leader must not commit old-term entries by counting alone.
        let voters = vec![1, 2, 3];
        let mut n: RaftNode<u64> = RaftNode::new(RaftConfig::with(1, voters));
        n.term = 5;
        n.log.push(RaftEntry {
            term: 3,
            payload: RaftPayload::Cmd(1),
        });
        n.role = RaftRole::Leader;
        n.match_idx.insert(2, 1);
        n.match_idx.insert(3, 1);
        n.maybe_commit();
        assert_eq!(n.commit_idx(), 0, "old-term entry not counted");
        n.append_to_log(RaftPayload::Noop); // term-5 entry
        n.match_idx.insert(2, 2);
        n.maybe_commit();
        assert_eq!(n.commit_idx(), 2, "commits once current-term entry acked");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn run(nodes: &mut [RaftNode<u64>], steps: usize) {
        for _ in 0..steps {
            for n in nodes.iter_mut() {
                n.tick();
            }
            let mut inbox: Vec<(NodeId, NodeId, RaftMsg<u64>)> = Vec::new();
            for n in nodes.iter_mut() {
                let from = n.pid();
                for (to, m) in n.outgoing_messages() {
                    inbox.push((from, to, m));
                }
            }
            for (from, to, m) in inbox {
                if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                    n.handle(from, m);
                }
            }
        }
    }

    #[test]
    fn learner_outside_voters_never_campaigns() {
        let mut learner: RaftNode<u64> = RaftNode::new(RaftConfig::with(9, vec![1, 2, 3]));
        for _ in 0..1_000 {
            learner.tick();
            let _ = learner.outgoing_messages();
        }
        assert_eq!(learner.role(), RaftRole::Follower);
        assert_eq!(learner.term(), 0, "no futile campaigns");
    }

    #[test]
    fn pre_vote_probe_does_not_bump_terms() {
        let voters: Vec<NodeId> = vec![1, 2, 3];
        let mut nodes: Vec<RaftNode<u64>> = voters
            .iter()
            .map(|&p| RaftNode::new(RaftConfig::with_pv_cq(p, voters.clone())))
            .collect();
        run(&mut nodes, 100);
        let term = nodes[0].term();
        // A lone pre-candidate probing a live cluster must not disturb it.
        let mut lone: RaftNode<u64> = RaftNode::new(RaftConfig::with_pv_cq(3, voters.clone()));
        lone.term = term;
        for _ in 0..50 {
            lone.tick();
            for (to, m) in lone.outgoing_messages() {
                if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                    n.handle(3, m);
                }
            }
            // Replies are dropped: the probe gets nowhere.
        }
        assert_eq!(lone.term(), term, "PreVote never increments the term");
        for n in &nodes {
            assert_eq!(n.term(), term, "peers undisturbed by pre-vote probes");
        }
    }

    #[test]
    fn conflict_hint_backtracks_in_one_round_trip() {
        let mut nodes: Vec<RaftNode<u64>> = {
            let voters: Vec<NodeId> = vec![1, 2, 3];
            voters
                .iter()
                .map(|&p| RaftNode::new(RaftConfig::with(p, voters.clone())))
                .collect()
        };
        run(&mut nodes, 100);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        for v in 1..=100 {
            nodes[li].propose(v);
        }
        run(&mut nodes, 50);
        // Manually regress a follower far behind (as if it had slept).
        let fi = (li + 1) % 3;
        nodes[fi].log.truncate(2);
        nodes[fi].commit_idx = 2;
        nodes[fi].applied_idx = 2;
        // The very next heartbeats and conflict hints must restore it.
        run(&mut nodes, 30);
        assert_eq!(
            nodes[fi].log_len(),
            nodes[li].log_len(),
            "fast backtracking restores the follower"
        );
    }

    #[test]
    fn membership_intent_survives_leader_change() {
        // ConfPrep is in the log, so a successor leader finishes the change
        // (the paper's §7.3 observation).
        let voters: Vec<NodeId> = vec![1, 2, 3];
        let mut nodes: Vec<RaftNode<u64>> = voters
            .iter()
            .map(|&p| RaftNode::new(RaftConfig::with(p, voters.clone())))
            .collect();
        nodes.push(RaftNode::new(RaftConfig::with(4, voters.clone())));
        run(&mut nodes, 100);
        let li = nodes.iter().position(|n| n.is_leader()).unwrap();
        let old_leader = nodes[li].pid();
        assert!(nodes[li].propose_membership(vec![1, 2, 3, 4]));
        run(&mut nodes, 10);
        // Depose the initiating leader before the change commits.
        let term = nodes.iter().map(|n| n.term()).max().unwrap();
        for n in nodes.iter_mut() {
            if n.pid() != old_leader && voters.contains(&n.pid()) {
                n.term = term;
                n.campaign();
                break;
            }
        }
        run(&mut nodes, 300);
        let four = nodes.iter().find(|n| n.pid() == 4).unwrap();
        assert_eq!(
            four.voters(),
            &[1, 2, 3, 4],
            "the successor completed the membership change"
        );
    }
}
