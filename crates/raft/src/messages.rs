//! Raft wire messages and log entries.

use crate::config::Command;
use crate::{NodeId, Term};

/// Fixed framing overhead per message, matching the size model used across
/// the harness (`omnipaxos::messages::HEADER_BYTES`).
pub const HEADER_BYTES: usize = 32;

/// Payload of one log slot.
#[derive(Debug, Clone, PartialEq)]
pub enum RaftPayload<C> {
    /// A no-op the leader commits at the start of its term (the classic
    /// trick to learn the commit index of previous terms).
    Noop,
    /// A client command.
    Cmd(C),
    /// A membership change: the new voter set.
    Conf(Vec<NodeId>),
    /// Announce an intended membership change: the named servers join as
    /// learners and are caught up by the leader. Replicated in the log (as
    /// raft-rs does) so that a *successor* leader can finish the change —
    /// the paper observed exactly this under reconfiguration overload
    /// (§7.3: "it was not the initial leader who committed the
    /// reconfiguration").
    ConfPrep(Vec<NodeId>),
}

/// One slot of the Raft log.
#[derive(Debug, Clone, PartialEq)]
pub struct RaftEntry<C> {
    pub term: Term,
    pub payload: RaftPayload<C>,
}

impl<C: Command> RaftEntry<C> {
    /// Approximate encoded size in bytes.
    pub fn size_bytes(&self) -> usize {
        8 + match &self.payload {
            RaftPayload::Noop => 0,
            RaftPayload::Cmd(c) => c.size_bytes(),
            RaftPayload::Conf(v) => v.len() * 8,
            RaftPayload::ConfPrep(v) => v.len() * 8,
        }
    }
}

/// The Raft message alphabet.
#[derive(Debug, Clone, PartialEq)]
pub enum RaftMsg<C> {
    /// Vote solicitation; `pre_vote` distinguishes the PreVote probe, which
    /// does not bump terms.
    RequestVote {
        term: Term,
        last_log_idx: u64,
        last_log_term: Term,
        pre_vote: bool,
    },
    /// Vote response. `term` echoes the election term (or reports a higher
    /// one, deposing the candidate).
    VoteResp {
        term: Term,
        granted: bool,
        pre_vote: bool,
    },
    /// Log replication / heartbeat.
    AppendEntries {
        term: Term,
        prev_idx: u64,
        prev_term: Term,
        entries: Vec<RaftEntry<C>>,
        commit: u64,
    },
    /// Replication acknowledgement. On rejection `conflict_idx` hints where
    /// the leader should back up to (accelerated log backtracking).
    AppendResp {
        term: Term,
        success: bool,
        match_idx: u64,
        conflict_idx: u64,
    },
}

impl<C: Command> RaftMsg<C> {
    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        let payload = match self {
            RaftMsg::AppendEntries { entries, .. } => {
                entries.iter().map(RaftEntry::size_bytes).sum()
            }
            _ => 0,
        };
        HEADER_BYTES + payload
    }

    /// The term carried by this message.
    pub fn term(&self) -> Term {
        match self {
            RaftMsg::RequestVote { term, .. }
            | RaftMsg::VoteResp { term, .. }
            | RaftMsg::AppendEntries { term, .. }
            | RaftMsg::AppendResp { term, .. } => *term,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_sizes_include_term_and_payload() {
        let noop: RaftEntry<u64> = RaftEntry {
            term: 1,
            payload: RaftPayload::Noop,
        };
        let cmd: RaftEntry<u64> = RaftEntry {
            term: 1,
            payload: RaftPayload::Cmd(7),
        };
        let conf: RaftEntry<u64> = RaftEntry {
            term: 1,
            payload: RaftPayload::Conf(vec![1, 2, 3]),
        };
        assert_eq!(noop.size_bytes(), 8);
        assert_eq!(cmd.size_bytes(), 16);
        assert_eq!(conf.size_bytes(), 32);
    }

    #[test]
    fn append_entries_size_scales_with_batch() {
        let batch: RaftMsg<u64> = RaftMsg::AppendEntries {
            term: 3,
            prev_idx: 0,
            prev_term: 0,
            entries: (0..10)
                .map(|i| RaftEntry {
                    term: 3,
                    payload: RaftPayload::Cmd(i),
                })
                .collect(),
            commit: 0,
        };
        assert_eq!(batch.size_bytes(), HEADER_BYTES + 160);
        let hb: RaftMsg<u64> = RaftMsg::AppendEntries {
            term: 3,
            prev_idx: 0,
            prev_term: 0,
            entries: vec![],
            commit: 0,
        };
        assert_eq!(hb.size_bytes(), HEADER_BYTES);
    }

    #[test]
    fn term_accessor_covers_all_variants() {
        let msgs: Vec<RaftMsg<u64>> = vec![
            RaftMsg::RequestVote {
                term: 5,
                last_log_idx: 0,
                last_log_term: 0,
                pre_vote: false,
            },
            RaftMsg::VoteResp {
                term: 5,
                granted: true,
                pre_vote: false,
            },
            RaftMsg::AppendResp {
                term: 5,
                success: true,
                match_idx: 1,
                conflict_idx: 0,
            },
        ];
        assert!(msgs.iter().all(|m| m.term() == 5));
    }
}
