//! Node configuration and the replicated-command abstraction.

use crate::NodeId;

/// A client command replicated by Raft. Mirrors `omnipaxos::Entry` but is
/// defined here so the baseline does not depend on the system under test.
pub trait Command: Clone + std::fmt::Debug {
    /// Approximate encoded size in bytes (for the harness's IO accounting).
    fn size_bytes(&self) -> usize {
        8
    }
}

impl Command for u64 {}
impl Command for () {
    fn size_bytes(&self) -> usize {
        0
    }
}

/// Static configuration of a Raft node.
#[derive(Debug, Clone)]
pub struct RaftConfig {
    /// This server.
    pub pid: NodeId,
    /// Initial voter set. A node outside this set behaves as a learner
    /// until a membership entry includes it.
    pub voters: Vec<NodeId>,
    /// Base election timeout in ticks; actual timeouts randomize in
    /// `[base, 2·base)` as in the Raft paper.
    pub election_ticks: u64,
    /// Leader heartbeat (empty `AppendEntries`) interval in ticks.
    pub heartbeat_ticks: u64,
    /// Enable the PreVote extension: probe electability without
    /// incrementing the term, with leader stickiness.
    pub pre_vote: bool,
    /// Enable CheckQuorum: a leader that cannot reach a majority within an
    /// election timeout steps down.
    pub check_quorum: bool,
    /// Max entries per `AppendEntries` message.
    pub max_batch: usize,
    /// RNG seed for this node's randomized timers.
    pub seed: u64,
}

impl RaftConfig {
    /// Plain Raft with the paper's defaults.
    pub fn with(pid: NodeId, voters: Vec<NodeId>) -> Self {
        RaftConfig {
            pid,
            voters,
            election_ticks: 10,
            heartbeat_ticks: 2,
            pre_vote: false,
            check_quorum: false,
            max_batch: 64 * 1024,
            seed: 0xACE1 ^ pid,
        }
    }

    /// Raft with the PreVote + CheckQuorum patch (the paper's "Raft PV+CQ").
    pub fn with_pv_cq(pid: NodeId, voters: Vec<NodeId>) -> Self {
        let mut c = Self::with(pid, voters);
        c.pre_vote = true;
        c.check_quorum = true;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pv_cq_constructor_sets_both_flags() {
        let c = RaftConfig::with_pv_cq(1, vec![1, 2, 3]);
        assert!(c.pre_vote && c.check_quorum);
        let p = RaftConfig::with(1, vec![1, 2, 3]);
        assert!(!p.pre_vote && !p.check_quorum);
    }

    #[test]
    fn seeds_differ_per_node() {
        let a = RaftConfig::with(1, vec![1, 2]);
        let b = RaftConfig::with(2, vec![1, 2]);
        assert_ne!(a.seed, b.seed, "distinct timers need distinct seeds");
    }
}
