//! Partial connectivity head-to-head: Omni-Paxos vs Raft under the
//! quorum-loss partition of the paper's §2a (Fig. 1a).
//!
//! Five servers; after a warmup the network degrades so that every server
//! can only reach one non-leader "hub". The old leader is alive but no
//! longer quorum-connected. Omni-Paxos detects this through the
//! quorum-connected flag in BLE heartbeats and recovers in a constant
//! number of election timeouts; Multi-Paxos (shown as the counterpoint)
//! deadlocks because the hub keeps receiving heartbeats from the stale
//! leader and never campaigns.
//!
//! Run with: `cargo run --example partition_tolerance --release`

use cluster::protocol::ProtocolKind;
use cluster::scenarios::{partition_run, Scenario};
use simulator::{ms, sec};

fn main() {
    let timeout = ms(50);
    let partition = sec(8);
    println!("quorum-loss partition: election timeout 50 ms, partition 8 s\n");
    for protocol in [
        ProtocolKind::OmniPaxos,
        ProtocolKind::Raft,
        ProtocolKind::MultiPaxos,
    ] {
        let o = partition_run(protocol, Scenario::QuorumLoss, timeout, partition, 99);
        let verdict = if o.recovered_during_partition {
            format!(
                "recovered; down for {:.0} ms (~{:.1} election timeouts)",
                o.downtime_us as f64 / 1e3,
                o.downtime_us as f64 / timeout as f64
            )
        } else {
            "DEADLOCKED for the whole partition".to_string()
        };
        println!(
            "{:<12} {} | decided during partition: {:>7} | leader changes: {}",
            o.protocol, verdict, o.decided_during, o.leader_changes
        );
    }
    println!(
        "\nThe paper's §7.2: Omni-Paxos recovers within ~4 timeouts with one \
         leader change; Multi-Paxos cannot recover until the partition heals."
    );
}
