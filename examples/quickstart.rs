//! Quickstart: a 3-server Omni-Paxos cluster replicating commands.
//!
//! Builds three `OmniPaxosServer`s, connects them through the deterministic
//! network simulator, elects a leader via Ballot Leader Election, proposes
//! commands, and reads the identical decided log back from every server.
//!
//! Run with: `cargo run --example quickstart`

use omnipaxos::service::{OmniPaxosServer, ServerConfig, ServiceMsg};
use omnipaxos::NodeId;
use simulator::{ms, Network, NetworkConfig};

fn main() {
    let nodes: Vec<NodeId> = vec![1, 2, 3];
    let mut servers: Vec<OmniPaxosServer<u64>> = nodes
        .iter()
        .map(|&pid| OmniPaxosServer::new(ServerConfig::with(pid), nodes.clone()))
        .collect();
    let mut net: Network<ServiceMsg<u64>> = Network::new(NetworkConfig {
        nodes: nodes.clone(),
        default_latency_us: 100, // 0.2 ms RTT, the paper's LAN setting
        ..Default::default()
    });

    // Drive the cluster: 1 ms ticks, delivering due messages in between.
    let step = |servers: &mut Vec<OmniPaxosServer<u64>>, net: &mut Network<ServiceMsg<u64>>| {
        let next = net.now() + ms(1);
        while let Some(d) = net.pop_next_before(next) {
            servers[(d.dst - 1) as usize].handle(d.src, d.msg);
        }
        net.advance_to(next);
        for s in servers.iter_mut() {
            s.tick();
        }
        for (i, server) in servers.iter_mut().enumerate() {
            let from = (i + 1) as NodeId;
            for (to, msg) in server.outgoing() {
                let bytes = msg.size_bytes();
                net.send(from, to, bytes, msg);
            }
        }
    };

    // 1. Ballot Leader Election elects a quorum-connected leader.
    while !servers.iter().any(|s| s.is_leader()) {
        step(&mut servers, &mut net);
    }
    let leader = servers.iter().position(|s| s.is_leader()).unwrap();
    println!(
        "elected leader: server {} (ballot {:?}) after {} ms",
        leader + 1,
        servers[leader].leader().unwrap(),
        net.now() / 1000
    );

    // 2. Propose commands through the leader.
    for value in 1..=10u64 {
        servers[leader].propose(value).expect("propose");
    }

    // 3. Wait until every server has decided all ten entries.
    while !servers.iter().all(|s| s.log().len() == 10) {
        step(&mut servers, &mut net);
    }
    println!("all servers decided after {} ms", net.now() / 1000);

    // 4. The replicated log is identical everywhere (Sequence Consensus).
    for s in &servers {
        println!("server {} log: {:?}", s.pid(), s.log());
        assert_eq!(s.log(), &(1..=10).collect::<Vec<u64>>()[..]);
    }
    println!("ok: logs are identical and in proposal order");
}
