//! Live reconfiguration with parallel log migration (the paper's §6).
//!
//! A 3-server cluster with history replaces one member with a fresh server.
//! The stop-sign is decided through normal Sequence Paxos; the service
//! layer then migrates the decided log to the newcomer **in parallel from
//! all donors** while the continuing servers keep serving traffic.
//!
//! Run with: `cargo run --example reconfiguration`

use omnipaxos::service::{OmniPaxosServer, ServerConfig, ServerRole, ServiceMsg};
use omnipaxos::NodeId;
use simulator::{ms, Network, NetworkConfig};

fn main() {
    let initial: Vec<NodeId> = vec![1, 2, 3];
    let mut servers: Vec<OmniPaxosServer<u64>> = initial
        .iter()
        .map(|&pid| OmniPaxosServer::new(ServerConfig::with(pid), initial.clone()))
        .collect();
    // Server 4 starts outside the configuration, idle until notified.
    servers.push(OmniPaxosServer::new_joiner(ServerConfig::with(4)));

    let mut net: Network<ServiceMsg<u64>> = Network::new(NetworkConfig {
        nodes: vec![1, 2, 3, 4],
        default_latency_us: 100,
        ..Default::default()
    });
    let step = |servers: &mut Vec<OmniPaxosServer<u64>>, net: &mut Network<ServiceMsg<u64>>| {
        let next = net.now() + ms(1);
        while let Some(d) = net.pop_next_before(next) {
            servers[(d.dst - 1) as usize].handle(d.src, d.msg);
        }
        net.advance_to(next);
        for s in servers.iter_mut() {
            s.tick();
        }
        for (i, server) in servers.iter_mut().enumerate() {
            let from = (i + 1) as NodeId;
            for (to, msg) in server.outgoing() {
                if (1..=4).contains(&to) {
                    let bytes = msg.size_bytes();
                    net.send(from, to, bytes, msg);
                }
            }
        }
    };

    // Warm up: elect and replicate some history.
    while !servers.iter().any(|s| s.is_leader()) {
        step(&mut servers, &mut net);
    }
    let leader = servers.iter().position(|s| s.is_leader()).unwrap();
    for v in 0..1_000u64 {
        servers[leader].propose(v).expect("propose");
    }
    while servers[..3].iter().any(|s| s.log().len() < 1_000) {
        step(&mut servers, &mut net);
    }
    println!(
        "configuration 1 = {:?}, leader = server {}, history = {} entries",
        initial,
        leader + 1,
        servers[leader].log().len()
    );

    // Replace server 1 with server 4 (keep the leader).
    let keep: Vec<NodeId> = (2..=4).collect();
    println!("reconfiguring to {keep:?} ...");
    servers[leader]
        .reconfigure(keep.clone())
        .expect("reconfigure");

    // Proposals during the switch are buffered and flushed into c_2.
    for v in 1_000..1_010u64 {
        servers[leader].propose(v).expect("propose during switch");
    }

    let start = net.now();
    while servers[3].role() != ServerRole::Active || servers[3].log().len() < 1_010 {
        step(&mut servers, &mut net);
    }
    println!(
        "server 4 migrated {} entries and joined configuration {} after {} ms",
        servers[3].log().len(),
        servers[3].config_id(),
        (net.now() - start) / 1_000
    );
    assert_eq!(servers[0].role(), ServerRole::Retired, "server 1 retired");
    // The migrated log matches the original exactly, including the
    // buffered proposals.
    let expected: Vec<u64> = (0..1_010).collect();
    assert_eq!(servers[3].log(), &expected[..]);
    println!(
        "ok: server 1 retired, server 4 active in c_{}, log intact ({} entries)",
        servers[3].config_id(),
        servers[3].log().len()
    );
}
