//! A replicated bank on the key-value store: concurrent transfers stay
//! atomic and linearizable because all condition checks happen inside the
//! replicated state machine, in log order.
//!
//! Demonstrates the `kvstore` crate (the paper's §1 motivating class of
//! stateful services) including session deduplication: a retried transfer
//! applies exactly once even if the original also went through.
//!
//! Run with: `cargo run --example kv_bank`

use kvstore::{KvCommand, KvNode, KvOp};
use omnipaxos::NodeId;

/// Deliver all in-flight messages and tick until quiescent.
fn settle(nodes: &mut [KvNode], steps: usize) {
    for _ in 0..steps {
        for n in nodes.iter_mut() {
            n.tick();
        }
        let mut inbox = Vec::new();
        for n in nodes.iter_mut() {
            let from = n.pid();
            for (to, m) in n.outgoing() {
                inbox.push((from, to, m));
            }
        }
        for (from, to, m) in inbox {
            if let Some(n) = nodes.iter_mut().find(|n| n.pid() == to) {
                n.handle(from, m);
            }
        }
    }
}

fn main() {
    let ids: Vec<NodeId> = vec![1, 2, 3];
    let mut nodes: Vec<KvNode> = ids.iter().map(|&p| KvNode::new(p, ids.clone())).collect();
    settle(&mut nodes, 100);
    let leader = nodes.iter().position(|n| n.is_leader()).expect("leader");
    println!("leader: server {}", leader + 1);

    // Open two accounts.
    for (seq, (key, value)) in [("alice", 100), ("bob", 50)].iter().enumerate() {
        nodes[leader]
            .submit(KvCommand {
                client: 1,
                seq: seq as u64 + 1,
                op: KvOp::Put {
                    key: key.to_string(),
                    value: *value,
                },
            })
            .expect("submit");
    }
    settle(&mut nodes, 50);

    // Concurrent transfers from two clients, including one that must be
    // rejected (insufficient funds) and one duplicated retry.
    let transfers = [
        (2u64, 1u64, "alice", "bob", 30),
        (3, 1, "bob", "alice", 20),
        (2, 2, "alice", "bob", 500), // rejected: alice has < 500
        (3, 2, "bob", "alice", 10),
        (3, 2, "bob", "alice", 10), // duplicate retry of (3, 2)
    ];
    for (client, seq, from, to, amount) in transfers {
        nodes[leader]
            .submit(KvCommand {
                client,
                seq,
                op: KvOp::Transfer {
                    from: from.to_string(),
                    to: to.to_string(),
                    amount,
                },
            })
            .expect("submit");
    }
    settle(&mut nodes, 100);

    for r in nodes[leader].take_results() {
        println!(
            "client {} seq {} -> applied: {}, value: {:?}",
            r.client, r.seq, r.applied, r.value
        );
    }

    // Conservation of money: 100 + 50 regardless of interleavings.
    for n in &nodes {
        let alice = n.read_local("alice").unwrap_or(0);
        let bob = n.read_local("bob").unwrap_or(0);
        println!("server {}: alice={alice} bob={bob}", n.pid());
        assert_eq!(alice + bob, 150, "money must be conserved");
        // 100 - 30 + 20 + 10 = 100; the 500 transfer rejected; the
        // duplicate (3,2) applied once.
        assert_eq!(alice, 100);
        assert_eq!(bob, 50);
    }
    println!("ok: transfers atomic, duplicates deduplicated, money conserved");
}
