//! Workspace root crate for the Omni-Paxos reproduction.
//!
//! This crate re-exports the member crates so that the repository-level
//! examples (`examples/`) and integration tests (`tests/`) can exercise the
//! whole system through a single dependency. See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use cluster;
pub use kvstore;
pub use multipaxos;
pub use omnipaxos;
pub use raft;
pub use simulator;
pub use vr;
