//! Property-based chaos tests: Sequence Consensus safety under arbitrary
//! partial partitions, heals, crashes and proposals.
//!
//! For any randomly generated schedule of faults, the paper's safety
//! properties (§4) must hold:
//!
//! * **SC1 Validity** — decided logs contain only proposed commands;
//! * **SC2 Uniform Agreement** — decided logs are prefixes of one another;
//! * **SC3 Integrity** — a server's decided log only grows by extension.
//!
//! Liveness is *not* asserted here (an adversarial schedule may legally
//! prevent progress); only that nothing decided is ever wrong or lost.

use omnipaxos::service::{OmniPaxosServer, ServerConfig, ServiceMsg};
use omnipaxos::NodeId;
use simulator::Rng;
use std::collections::{HashSet, VecDeque};

/// One chaos event in the generated schedule.
#[derive(Debug, Clone)]
enum Chaos {
    /// Propose `count` commands at server `pid`.
    Propose { pid: NodeId, count: u8 },
    /// Cut the link between two servers.
    Cut(NodeId, NodeId),
    /// Heal the link between two servers.
    Heal(NodeId, NodeId),
    /// Crash-recover a server (volatile state lost, storage kept).
    CrashRecover(NodeId),
    /// Heal everything.
    HealAll,
    /// Let the cluster run for `steps` steps.
    Run { steps: u8 },
}

fn gen_chaos(rng: &mut Rng, n: NodeId) -> Chaos {
    match rng.below(6) {
        0 => Chaos::Propose {
            pid: rng.range_inclusive(1, n),
            count: rng.range_inclusive(1, 19) as u8,
        },
        1 => Chaos::Cut(rng.range_inclusive(1, n), rng.range_inclusive(1, n)),
        2 => Chaos::Heal(rng.range_inclusive(1, n), rng.range_inclusive(1, n)),
        3 => Chaos::CrashRecover(rng.range_inclusive(1, n)),
        4 => Chaos::HealAll,
        _ => Chaos::Run {
            steps: rng.range_inclusive(5, 59) as u8,
        },
    }
}

fn gen_schedule(rng: &mut Rng, n: NodeId, max_events: u64) -> Vec<Chaos> {
    let len = rng.range_inclusive(1, max_events);
    (0..len).map(|_| gen_chaos(rng, n)).collect()
}

/// A lossy in-memory cluster with link control, mirroring the harness used
/// by the core crate's tests but tracking safety invariants continuously.
struct ChaosCluster {
    servers: Vec<OmniPaxosServer<u64>>,
    cut: HashSet<(NodeId, NodeId)>,
    wire: VecDeque<(NodeId, NodeId, ServiceMsg<u64>)>,
    proposed: HashSet<u64>,
    next_value: u64,
    /// Longest decided log seen so far per server (for SC3).
    decided_history: Vec<Vec<u64>>,
}

impl ChaosCluster {
    fn new(n: usize) -> Self {
        let nodes: Vec<NodeId> = (1..=n as NodeId).collect();
        ChaosCluster {
            servers: nodes
                .iter()
                .map(|&p| OmniPaxosServer::new(ServerConfig::with(p), nodes.clone()))
                .collect(),
            cut: HashSet::new(),
            wire: VecDeque::new(),
            proposed: HashSet::new(),
            next_value: 0,
            decided_history: vec![Vec::new(); n],
        }
    }

    fn step(&mut self) {
        for s in &mut self.servers {
            s.tick();
        }
        let n = self.servers.len();
        for i in 0..n {
            let from = (i + 1) as NodeId;
            for (to, msg) in self.servers[i].outgoing() {
                if to >= 1 && to as usize <= n {
                    self.wire.push_back((from, to, msg));
                }
            }
        }
        let inflight = std::mem::take(&mut self.wire);
        for (from, to, msg) in inflight {
            if !self.cut.contains(&(from, to)) {
                self.servers[to as usize - 1].handle(from, msg);
            }
        }
        self.check_safety();
    }

    fn apply(&mut self, event: &Chaos) {
        match event {
            Chaos::Propose { pid, count } => {
                for _ in 0..*count {
                    let v = self.next_value;
                    self.next_value += 1;
                    // Proposals may fail (no leader): only count accepted
                    // submissions for SC1.
                    if self.servers[(*pid - 1) as usize].propose(v).is_ok() {
                        self.proposed.insert(v);
                    }
                }
            }
            Chaos::Cut(a, b) => {
                if a != b {
                    self.cut.insert((*a, *b));
                    self.cut.insert((*b, *a));
                }
            }
            Chaos::Heal(a, b) => {
                if a != b {
                    let was = self.cut.remove(&(*a, *b)) | self.cut.remove(&(*b, *a));
                    if was {
                        self.servers[(*a - 1) as usize].reconnected(*b);
                        self.servers[(*b - 1) as usize].reconnected(*a);
                    }
                }
            }
            Chaos::CrashRecover(pid) => {
                let i = (*pid - 1) as usize;
                // In-flight messages to/from the crashed server vanish.
                self.wire.retain(|(f, t, _)| *f != *pid && *t != *pid);
                self.servers[i].fail_recovery();
            }
            Chaos::HealAll => {
                let pairs: Vec<(NodeId, NodeId)> = self.cut.iter().copied().collect();
                for (a, b) in pairs {
                    self.apply(&Chaos::Heal(a, b));
                }
            }
            Chaos::Run { steps } => {
                for _ in 0..*steps {
                    self.step();
                }
            }
        }
    }

    /// SC1 + SC2 + SC3 on the current state.
    fn check_safety(&mut self) {
        // SC1: decided values were proposed.
        for s in &self.servers {
            for v in s.log() {
                assert!(
                    self.proposed.contains(v),
                    "decided unproposed value {v} at server {}",
                    s.pid()
                );
            }
        }
        // SC3: each server's decided log only ever grows by extension.
        for (i, s) in self.servers.iter().enumerate() {
            let prev = &self.decided_history[i];
            let cur = s.log();
            assert!(
                cur.len() >= prev.len() && &cur[..prev.len()] == prev.as_slice(),
                "server {} decided log shrank or diverged from its past:\nprev={prev:?}\ncur={cur:?}",
                s.pid()
            );
            self.decided_history[i] = cur.to_vec();
        }
        // SC2: pairwise prefix property.
        for a in &self.servers {
            for b in &self.servers {
                let (la, lb) = (a.log(), b.log());
                let n = la.len().min(lb.len());
                assert_eq!(
                    &la[..n],
                    &lb[..n],
                    "uniform agreement violated between {} and {}",
                    a.pid(),
                    b.pid()
                );
            }
        }
    }
}

/// Safety holds for any chaos schedule on a 3-server cluster.
#[test]
fn sequence_consensus_safety_3() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x5AFE3 + case);
        let events = gen_schedule(&mut rng, 3, 39);
        let mut cluster = ChaosCluster::new(3);
        cluster.apply(&Chaos::Run { steps: 50 });
        for e in &events {
            cluster.apply(e);
        }
        // Always end with a heal + settle so liveness bugs surface as
        // failed convergence in the dedicated test below, not here.
        cluster.apply(&Chaos::HealAll);
        cluster.apply(&Chaos::Run { steps: 150 });
    }
}

/// Safety holds for any chaos schedule on a 5-server cluster.
#[test]
fn sequence_consensus_safety_5() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x5AFE5 + case);
        let events = gen_schedule(&mut rng, 5, 39);
        let mut cluster = ChaosCluster::new(5);
        cluster.apply(&Chaos::Run { steps: 50 });
        for e in &events {
            cluster.apply(e);
        }
        cluster.apply(&Chaos::HealAll);
        cluster.apply(&Chaos::Run { steps: 150 });
    }
}

/// Liveness after healing: once fully connected (and nobody crashed
/// mid-run), the cluster converges and can decide new proposals.
#[test]
fn converges_after_healing() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xC0471 + case);
        let events = gen_schedule(&mut rng, 3, 24);
        let final_values = rng.range_inclusive(1, 9) as u8;
        let mut cluster = ChaosCluster::new(3);
        cluster.apply(&Chaos::Run { steps: 80 });
        for e in &events {
            cluster.apply(e);
        }
        cluster.apply(&Chaos::HealAll);
        cluster.apply(&Chaos::Run { steps: 250 });
        // Propose through whichever server now leads.
        let leader = cluster
            .servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_leader())
            .max_by_key(|(_, s)| s.leader())
            .map(|(i, _)| i);
        assert!(leader.is_some(), "a leader must emerge after healing");
        let li = leader.unwrap();
        let base = cluster.next_value;
        cluster.apply(&Chaos::Propose {
            pid: (li + 1) as NodeId,
            count: final_values,
        });
        cluster.apply(&Chaos::Run { steps: 250 });
        let decided = cluster.servers[li].log().to_vec();
        for v in base..base + final_values as u64 {
            assert!(
                decided.contains(&v),
                "value {v} proposed after healing must decide; log tail: {:?}",
                &decided[decided.len().saturating_sub(10)..]
            );
        }
    }
}
