//! Cross-crate end-to-end tests: the replicated KV service running over
//! the simulator, surviving the paper's partial partitions, and the full
//! reconfiguration pipeline through the cluster harness.

use kvstore::{KvCommand, KvNode, KvOp};
use omnipaxos::NodeId;
use simulator::{ms, Network, NetworkConfig};

/// KV cluster over the real simulator (latency, FIFO, partitions).
struct KvSim {
    nodes: Vec<KvNode>,
    net: Network<omnipaxos::ServiceMsg<KvCommand>>,
}

impl KvSim {
    fn new(n: usize) -> Self {
        let ids: Vec<NodeId> = (1..=n as NodeId).collect();
        KvSim {
            nodes: ids.iter().map(|&p| KvNode::new(p, ids.clone())).collect(),
            net: Network::new(NetworkConfig {
                nodes: ids,
                default_latency_us: 100,
                ..Default::default()
            }),
        }
    }

    fn step(&mut self) {
        let next = self.net.now() + ms(1);
        while let Some(d) = self.net.pop_next_before(next) {
            self.nodes[(d.dst - 1) as usize].handle(d.src, d.msg);
        }
        self.net.advance_to(next);
        for n in &mut self.nodes {
            n.tick();
        }
        for i in 0..self.nodes.len() {
            let from = (i + 1) as NodeId;
            for (to, msg) in self.nodes[i].outgoing() {
                let bytes = msg.size_bytes();
                self.net.send(from, to, bytes, msg);
            }
        }
    }

    fn run_until(&mut self, max: usize, mut pred: impl FnMut(&Self) -> bool) {
        for _ in 0..max {
            if pred(self) {
                return;
            }
            self.step();
        }
        panic!("condition not reached in {max} steps");
    }

    fn leader(&self) -> Option<usize> {
        self.nodes.iter().position(|n| n.is_leader())
    }
}

#[test]
fn kv_store_survives_chained_partition() {
    let mut sim = KvSim::new(3);
    sim.run_until(500, |s| s.leader().is_some());
    let li = sim.leader().unwrap();
    // Write some state.
    for seq in 1..=5u64 {
        sim.nodes[li]
            .submit(KvCommand {
                client: 1,
                seq,
                op: KvOp::Add {
                    key: "counter".into(),
                    delta: 1,
                },
            })
            .unwrap();
    }
    sim.run_until(500, |s| {
        s.nodes.iter().all(|n| n.read_local("counter") == Some(5))
    });
    // Chained partition: cut the leader from one follower.
    let leader_pid = (li + 1) as NodeId;
    let other = (1..=3u64).find(|&p| p != leader_pid).unwrap();
    sim.net.links_mut().set_link(leader_pid, other, false);
    // Find whoever can still commit and write through it.
    for _ in 0..500 {
        sim.step();
    }
    let writer = {
        let mut best: Option<(usize, omnipaxos::Ballot)> = None;
        for i in 0..sim.nodes.len() {
            if sim.nodes[i].is_leader() {
                let ballot = sim.nodes[i].server().leader().expect("leader has ballot");
                if best.is_none_or(|(_, b)| ballot > b) {
                    best = Some((i, ballot));
                }
            }
        }
        best.expect("a leader exists during the chained partition")
            .0
    };
    sim.nodes[writer]
        .submit(KvCommand {
            client: 1,
            seq: 6,
            op: KvOp::Put {
                key: "during".into(),
                value: 1,
            },
        })
        .unwrap();
    sim.run_until(1_000, |s| {
        s.nodes
            .iter()
            .filter(|n| n.read_local("during") == Some(1))
            .count()
            >= 2
    });
    // Heal; everyone converges.
    sim.net.links_mut().set_link(leader_pid, other, true);
    sim.nodes[(leader_pid - 1) as usize]
        .server()
        .reconnected(other);
    sim.nodes[(other - 1) as usize]
        .server()
        .reconnected(leader_pid);
    sim.run_until(1_000, |s| {
        s.nodes
            .iter()
            .all(|n| n.read_local("counter") == Some(5) && n.read_local("during") == Some(1))
    });
    // All state machines identical.
    let reference = sim.nodes[0].state().clone();
    for n in &sim.nodes[1..] {
        assert_eq!(n.state(), &reference);
    }
}

#[test]
fn kv_store_linearizable_read_after_partition_heal() {
    let mut sim = KvSim::new(3);
    sim.run_until(500, |s| s.leader().is_some());
    let li = sim.leader().unwrap();
    sim.nodes[li]
        .submit(KvCommand {
            client: 7,
            seq: 1,
            op: KvOp::Put {
                key: "x".into(),
                value: 99,
            },
        })
        .unwrap();
    sim.run_until(500, |s| s.nodes.iter().all(|n| n.read_local("x").is_some()));
    // Linearizable read goes through the log and returns the value.
    sim.nodes[li].read_linearizable(7, 2, "x").unwrap();
    sim.run_until(500, |s| {
        // read marker decided everywhere
        s.nodes.iter().all(|n| n.read_local("x") == Some(99))
    });
    for _ in 0..50 {
        sim.step();
    }
    let results = sim.nodes[li].take_results();
    let read = results
        .iter()
        .find(|r| r.client == 7 && r.seq == 2)
        .expect("read result");
    assert_eq!(read.value, Some(99));
}

#[test]
fn cluster_harness_runs_all_protocols_through_one_interface() {
    use cluster::client::ClientConfig;
    use cluster::protocol::ProtocolKind;
    use cluster::runner::{RunConfig, Runner};
    use simulator::sec;

    // Smoke: every protocol adapter reaches steady state on the same
    // workload through the same harness.
    for protocol in [
        ProtocolKind::OmniPaxos,
        ProtocolKind::Raft,
        ProtocolKind::RaftPvCq,
        ProtocolKind::MultiPaxos,
        ProtocolKind::Vr,
    ] {
        let config = RunConfig {
            protocol,
            n: 3,
            client: ClientConfig {
                cp: 50,
                entry_size: 8,
                max_inject_per_tick: 50,
                retry_ticks: 200,
            },
            duration: sec(3),
            ..Default::default()
        };
        let report = Runner::new(config).run();
        assert!(
            report.total_decided > 10_000,
            "{}: only {} decided",
            report.protocol,
            report.total_decided
        );
    }
}

#[test]
fn reconfiguration_through_harness_replaces_a_server() {
    use cluster::client::ClientConfig;
    use cluster::protocol::ProtocolKind;
    use cluster::runner::{Action, RunConfig, Runner};
    use simulator::sec;

    for protocol in [ProtocolKind::OmniPaxos, ProtocolKind::Raft] {
        let config = RunConfig {
            protocol,
            n: 3,
            joiners: 1,
            client: ClientConfig {
                cp: 50,
                entry_size: 8,
                max_inject_per_tick: 25,
                retry_ticks: 200,
            },
            election_timeout_us: ms(20),
            duration: sec(8),
            initial_log: 5_000,
            initial_entry_size: 64,
            nic_bytes_per_sec: Some(25_000_000),
            window_us: sec(1),
            schedule: vec![(sec(2), Action::Reconfigure(vec![2, 3, 4]))],
            ..Default::default()
        };
        let report = Runner::new(config).run();
        assert!(
            report.reconfig_done_at.is_some(),
            "{}: reconfiguration never completed",
            report.protocol
        );
        // Service resumed after the switch.
        let done = report.reconfig_done_at.unwrap();
        assert!(
            report.decides.decided_in(done, sec(8)) > 0,
            "{}: no progress after reconfiguration",
            report.protocol
        );
    }
}
